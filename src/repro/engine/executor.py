"""The query execution layer: one engine, four domains, batched serving.

:class:`SearchEngine` owns the attached domain stores and answers
:class:`repro.engine.api.Query` objects through the backend registry.  It
adds the serving-layer machinery the per-domain searchers do not have:

* a **searcher cache** -- searcher construction (per algorithm / tau / chain
  length) happens once and is reused across queries;
* an **LRU result cache** keyed on ``(backend, query, tau, chain_length,
  algorithm, k)`` plus the store and mutation epochs, so a mutation can
  never serve a stale answer;
* **online mutation** -- :meth:`SearchEngine.upsert` / :meth:`SearchEngine.
  delete` maintain a per-backend :class:`repro.engine.mutation.DeltaStore`
  (delta records answered by exact linear scan, tombstones filtered from
  main answers) and :meth:`SearchEngine.compact` folds it into a rebuilt
  main index;
* **batched and thread-pooled parallel execution** with order-preserving
  results;
* **latency statistics** per backend, served as views over the
  :class:`repro.common.obs.MetricsRegistry` (one code path feeds
  ``/stats``, ``/metrics`` and the funnel aggregates); and
* **top-k search** delegated to :mod:`repro.engine.topk`.

The engine is thread-safe: shared state is touched only under an internal
lock, which is never held while a searcher runs.  Mutations are atomic
(copy-on-write overlays swapped under the lock); a compaction that races
in-flight mutations may lose them, so serialise writers with compactions
(the HTTP serving layer runs both on one executor thread).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Hashable, Sequence

import numpy as np

from repro.common import obs
from repro.common.obs import MetricsRegistry, TraceBuffer, span
from repro.common.stats import Timer
from repro.engine import backends as _backends  # noqa: F401 - populate registry
from repro.engine.api import Query, Response
from repro.engine.backend import Backend, get_backend
from repro.engine.mutation import DeltaStore
from repro.engine.persistence import Container, load_container, save_container
from repro.engine.topk import run_topk


class BackendStats:
    """Read-only funnel view of one backend, derived from the registry.

    Mirrors the attribute surface the old per-backend ``QueryStats``
    aggregates exposed, but every number is read straight from the metrics
    registry -- there is exactly one bookkeeping code path.
    """

    __slots__ = ("_registry", "_backend")

    def __init__(self, registry: MetricsRegistry, backend: str) -> None:
        self._registry = registry
        self._backend = backend

    def _value(self, name: str) -> float:
        instrument = self._registry.get(name, backend=self._backend)
        return instrument.value if instrument is not None else 0.0

    @property
    def num_queries(self) -> int:
        return int(self._value("engine_backend_queries_total"))

    @property
    def total_generated(self) -> int:
        return int(self._value("engine_candidates_generated_total"))

    @property
    def total_candidates(self) -> int:
        return int(self._value("engine_candidates_verified_total"))

    @property
    def total_results(self) -> int:
        return int(self._value("engine_results_total"))

    def _stage_time(self, stage: str) -> float:
        instrument = self._registry.get(
            "engine_stage_seconds_total", backend=self._backend, stage=stage
        )
        return instrument.value if instrument is not None else 0.0

    @property
    def total_candidate_time(self) -> float:
        return self._stage_time("candidates")

    @property
    def total_verify_time(self) -> float:
        return self._stage_time("verify")

    @property
    def avg_generated(self) -> float:
        n = self.num_queries
        return self.total_generated / n if n else 0.0

    @property
    def avg_candidates(self) -> float:
        n = self.num_queries
        return self.total_candidates / n if n else 0.0

    @property
    def avg_results(self) -> float:
        n = self.num_queries
        return self.total_results / n if n else 0.0

    @property
    def avg_candidate_time(self) -> float:
        n = self.num_queries
        return self.total_candidate_time / n if n else 0.0

    @property
    def avg_verify_time(self) -> float:
        n = self.num_queries
        return self.total_verify_time / n if n else 0.0

    @property
    def avg_total_time(self) -> float:
        n = self.num_queries
        return (self.total_candidate_time + self.total_verify_time) / n if n else 0.0

    def latency_quantile_ms(self, q: float) -> float:
        hist = self._registry.get("engine_query_seconds", backend=self._backend)
        return hist.quantile(q) * 1000.0 if hist is not None else 0.0


class EngineStats:
    """Aggregate serving statistics of one :class:`SearchEngine`.

    Counters track *served* tau-selections: a top-k query contributes its
    escalation rungs (each an ordinary engine search) rather than being
    counted again as an aggregate; cache hit/miss counters cover every
    request, including top-k aggregates.

    All numbers live in a :class:`repro.common.obs.MetricsRegistry`; the
    attributes and :meth:`snapshot` below are views over it, so ``/stats``,
    ``/metrics`` and the funnel averages can never disagree.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._queries = r.counter(
            "engine_queries_total", "tau-selections served (top-k rungs count individually)"
        )
        self._hits = r.counter("engine_cache_hits_total", "result-cache hits")
        self._misses = r.counter("engine_cache_misses_total", "result-cache misses")
        self._time = r.counter(
            "engine_time_seconds_total", "wall seconds spent inside the engine"
        )
        self._backends: set[str] = set()

    # -- write path (called by the engine under its lock) -------------------

    def observe_hit(self) -> None:
        self._hits.inc()

    def observe_miss(self) -> None:
        self._misses.inc()

    def observe_query(self, backend: str, response: Response) -> None:
        """Fold one answered tau-selection into the registry."""
        self._backends.add(backend)
        r = self.registry
        generated = response.num_generated
        if generated is None:
            # Searchers that do not track a pre-chain count (the scalar
            # baselines) fall back to the candidate count, making the filter
            # look free rather than wrong.
            generated = response.num_candidates
        self._queries.inc()
        self._time.inc(response.engine_time)
        r.counter("engine_backend_queries_total", "queries answered", backend=backend).inc()
        r.counter(
            "engine_candidates_generated_total",
            "objects that entered the filter pipeline (pre-chain)",
            backend=backend,
        ).inc(int(generated))
        r.counter(
            "engine_candidates_verified_total",
            "objects that reached verification (filter output)",
            backend=backend,
        ).inc(response.num_candidates)
        r.counter(
            "engine_results_total", "objects that matched", backend=backend
        ).inc(response.num_results)
        r.counter(
            "engine_stage_seconds_total",
            "searcher-reported seconds per pipeline stage",
            backend=backend,
            stage="candidates",
        ).inc(response.candidate_time)
        r.counter(
            "engine_stage_seconds_total",
            "searcher-reported seconds per pipeline stage",
            backend=backend,
            stage="verify",
        ).inc(response.verify_time)
        r.histogram(
            "engine_query_seconds", "per-query engine latency", backend=backend
        ).observe(response.engine_time)

    # -- read path -----------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return int(self._queries.value)

    @property
    def cache_hits(self) -> int:
        return int(self._hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._misses.value)

    @property
    def engine_time(self) -> float:
        return self._time.value

    @property
    def per_backend(self) -> dict[str, BackendStats]:
        return {name: BackendStats(self.registry, name) for name in sorted(self._backends)}

    @property
    def avg_engine_time(self) -> float:
        return self.engine_time / self.num_queries if self.num_queries else 0.0

    def snapshot(self) -> dict:
        """A JSON-friendly view (used by the CLI and the smoke benchmark)."""
        return {
            "num_queries": self.num_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "engine_time_s": self.engine_time,
            "avg_engine_time_ms": self.avg_engine_time * 1000.0,
            "per_backend": {
                name: {
                    "num_queries": stats.num_queries,
                    # The filter-vs-verify funnel: objects that entered the
                    # pipeline, objects that reached verification, objects
                    # that matched -- plus where the time went per stage.
                    "avg_generated_candidates": stats.avg_generated,
                    "avg_candidates": stats.avg_candidates,
                    "avg_results": stats.avg_results,
                    "avg_candidate_time_ms": stats.avg_candidate_time * 1000.0,
                    "avg_verify_time_ms": stats.avg_verify_time * 1000.0,
                    "avg_total_time_ms": stats.avg_total_time * 1000.0,
                    "p50_ms": stats.latency_quantile_ms(0.50),
                    "p95_ms": stats.latency_quantile_ms(0.95),
                    "p99_ms": stats.latency_quantile_ms(0.99),
                }
                for name, stats in self.per_backend.items()
            },
        }


def _tau_key(tau: float | int | None) -> Hashable:
    """Cache-key form of a threshold that keeps int and float taus distinct.

    The distinction is semantic for the sets backend (int = overlap,
    float = Jaccard), and ``hash(1) == hash(1.0)`` would merge them.
    """
    if tau is None:
        return None
    is_int = isinstance(tau, (int, np.integer)) and not isinstance(tau, bool)
    return (float(tau), is_int)


class SearchEngine:
    """A unified serving layer over the four similarity-search domains.

    Args:
        cache_size: capacity of the LRU result cache (0 disables it).
        max_workers: default thread-pool width for parallel batches.
    """

    def __init__(self, cache_size: int = 1024, max_workers: int | None = None):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._stores: dict[str, Any] = {}
        # Bumped whenever a backend's store is replaced; part of every
        # searcher/result cache key, so entries built against a replaced
        # store can never be served again (even by a search that raced the
        # replacement).
        self._epochs: dict[str, int] = {}
        # Bumped on every upsert/delete; part of the *result* cache key only
        # -- a mutation invalidates cached answers but the searchers, which
        # serve the unchanged main store, stay warm.
        self._mutation_epochs: dict[str, int] = {}
        # Per-backend delta/tombstone overlay (None for immutable backends).
        self._deltas: dict[str, DeltaStore | None] = {}
        self._searchers: dict[tuple, Any] = {}
        self._cache: OrderedDict[tuple, Response] = OrderedDict()
        self._cache_size = cache_size
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._stats = EngineStats()
        self._traces = TraceBuffer(128)

    # -- dataset management ------------------------------------------------

    def add_dataset(self, backend_name: str, dataset: Any) -> Any:
        """Attach a domain dataset; the backend builds its store/index once."""
        backend = get_backend(backend_name)
        store = backend.prepare(dataset)
        delta = backend.delta_store(store) if backend.mutable else None
        with self._lock:
            self._stores[backend_name] = store
            self._deltas[backend_name] = delta
            self._epochs[backend_name] = self._epochs.get(backend_name, 0) + 1
            self._evict_backend_state(backend_name)
            self._observe_backend_state(backend_name)
        return store

    def backend(self, backend_name: str) -> Backend:
        return get_backend(backend_name)

    def store(self, backend_name: str) -> Any:
        try:
            return self._stores[backend_name]
        except KeyError:
            attached = ", ".join(sorted(self._stores)) or "(none)"
            raise KeyError(
                f"no dataset attached for backend {backend_name!r}; "
                f"attached backends: {attached}"
            ) from None

    def attached_backends(self) -> list[str]:
        return sorted(self._stores)

    def _evict_backend_state(self, backend_name: str) -> None:
        """Drop cached searchers/results that refer to a replaced store."""
        self._searchers = {
            key: value for key, value in self._searchers.items() if key[0] != backend_name
        }
        for key in [key for key in self._cache if key[0] == backend_name]:
            del self._cache[key]

    def _invalidate_results(self, backend_name: str) -> None:
        """Evict cached responses after a mutation; searchers stay warm.

        The epoch bump also fences any search that raced the mutation: its
        response was keyed under the old mutation epoch and can never be
        served again, even though it may have seen the new overlay.
        """
        self._mutation_epochs[backend_name] = self._mutation_epochs.get(backend_name, 0) + 1
        for key in [key for key in self._cache if key[0] == backend_name]:
            del self._cache[key]

    def _observe_backend_state(self, backend_name: str) -> None:
        """Refresh the epoch / delta-store gauges after a state change."""
        r = self._stats.registry
        r.gauge("engine_store_epoch", "main-store rebuild epoch", backend=backend_name).set(
            self._epochs.get(backend_name, 0)
        )
        r.gauge("engine_mutation_epoch", "upsert/delete epoch", backend=backend_name).set(
            self._mutation_epochs.get(backend_name, 0)
        )
        delta = self._deltas.get(backend_name)
        if delta is not None:
            r.gauge(
                "engine_delta_records", "records in the delta store", backend=backend_name
            ).set(len(delta.records))
            r.gauge(
                "engine_delta_tombstones", "tombstoned main ids", backend=backend_name
            ).set(len(delta.tombstones))

    # -- persistence -------------------------------------------------------

    def save_index(
        self, backend_name: str, directory: str, queries: Sequence[Any] | None = None
    ) -> dict:
        """Persist the attached store (and optional workload) to ``directory``.

        A live delta/tombstone overlay is persisted alongside the main store,
        so upserts and deletes survive a save/load round trip without forcing
        a compaction first.
        """
        with self._lock:
            store = self.store(backend_name)
            delta = self._deltas.get(backend_name)
        return save_container(self.backend(backend_name), store, directory, queries, delta=delta)

    def load_index(self, directory: str) -> Container:
        """Load a container and attach its store; returns the container."""
        container = load_container(directory)
        backend = container.backend
        delta = container.delta
        if delta is None and backend.mutable:
            delta = backend.delta_store(container.store)
        with self._lock:
            name = backend.name
            self._stores[name] = container.store
            self._deltas[name] = delta
            self._epochs[name] = self._epochs.get(name, 0) + 1
            self._evict_backend_state(name)
            self._observe_backend_state(name)
        return container

    # -- mutation ----------------------------------------------------------

    def delta(self, backend_name: str) -> DeltaStore | None:
        """The backend's current overlay (None for immutable backends)."""
        self.store(backend_name)  # fail fast when nothing is attached
        with self._lock:
            return self._deltas.get(backend_name)

    def _require_mutable(self, backend_name: str) -> tuple[Backend, Any]:
        backend = self.backend(backend_name)
        store = self.store(backend_name)
        if not backend.mutable:
            raise NotImplementedError(
                f"backend {backend_name!r} does not support online mutation"
            )
        return backend, store

    def upsert(self, backend_name: str, record: Any, obj_id: int | None = None) -> int:
        """Insert a new record (``obj_id=None``) or overwrite an existing id.

        The record lands in the backend's delta store and is servable
        immediately; cached responses for the backend are invalidated.
        Returns the record's external id.
        """
        backend, store = self._require_mutable(backend_name)
        record = backend.check_record(store, record)
        with self._lock:
            delta, assigned = self._deltas[backend_name].with_upsert(record, obj_id)
            self._deltas[backend_name] = delta
            self._invalidate_results(backend_name)
            self._observe_backend_state(backend_name)
        return assigned

    def delete(self, backend_name: str, obj_id: int) -> bool:
        """Remove one id (tombstoning its main copy); True if it was live."""
        self._require_mutable(backend_name)
        with self._lock:
            delta, deleted = self._deltas[backend_name].with_delete(obj_id)
            if deleted:
                self._deltas[backend_name] = delta
                self._invalidate_results(backend_name)
                self._observe_backend_state(backend_name)
        return deleted

    def compact(self, backend_name: str) -> dict:
        """Fold the delta store into a rebuilt main index.

        Rebuilding costs one full index construction over the live records
        -- the same price as the original build -- which is why it is an
        explicit operation rather than something every upsert pays.  Returns
        a summary of what was folded.  Searches may run concurrently (they
        serve the old store until the swap); concurrent *mutations* may be
        lost, so serialise writers with compactions.
        """
        backend, store = self._require_mutable(backend_name)
        with self._lock:
            delta = self._deltas[backend_name]
        before = delta.summary()
        if delta.is_identity:
            return {"backend": backend_name, "compacted": False, **before}
        new_store, new_delta = backend.apply_mutations(store, delta)
        with self._lock:
            self._stores[backend_name] = new_store
            self._deltas[backend_name] = new_delta
            self._epochs[backend_name] = self._epochs.get(backend_name, 0) + 1
            self._evict_backend_state(backend_name)
            self._observe_backend_state(backend_name)
        return {
            "backend": backend_name,
            "compacted": True,
            "folded_records": before["delta_records"],
            "dropped_tombstones": before["num_tombstones"],
            **new_delta.summary(),
        }

    def mutation_info(self, backend_name: str) -> dict:
        """Overlay counters of one backend (``/stats`` and CLI surface)."""
        backend = self.backend(backend_name)
        self.store(backend_name)
        if not backend.mutable:
            return {"backend": backend_name, "mutable": False}
        with self._lock:
            delta = self._deltas[backend_name]
        return {"backend": backend_name, "mutable": True, **delta.summary()}

    # -- execution ---------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = EngineStats()

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def _cache_key(self, query: Query, backend: Backend) -> tuple:
        return (
            query.backend,
            self._epochs.get(query.backend, 0),
            self._mutation_epochs.get(query.backend, 0),
            backend.query_key(query.payload),
            _tau_key(query.tau),
            query.chain_length,
            query.algorithm,
            query.k,
        )

    def _searcher(self, query: Query, backend: Backend, store: Any, epoch: int) -> Any:
        """The cached searcher for ``store``, which was read at ``epoch``.

        The key uses the epoch captured *together with* the store snapshot:
        keying on the current epoch instead would let a compaction that
        lands between the snapshot and this call cache an old-store
        searcher under the new epoch, poisoning every later query.
        """
        key = (
            query.backend,
            epoch,
            query.algorithm,
            _tau_key(query.tau),
            query.chain_length,
        )
        with self._lock:
            searcher = self._searchers.get(key)
        if searcher is not None:
            return searcher
        searcher = backend.make_searcher(store, query.algorithm, query.tau, query.chain_length)
        with self._lock:
            self._searchers.setdefault(key, searcher)
        return searcher

    def _snapshot(self, backend_name: str) -> tuple[Any, DeltaStore | None, int]:
        """The current (store, overlay, store epoch), read atomically."""
        with self._lock:
            return (
                self.store(backend_name),
                self._deltas.get(backend_name),
                self._epochs.get(backend_name, 0),
            )

    def _search_threshold(self, query: Query, backend: Backend) -> Response:
        """One tau-selection: main index answer merged with the delta scan."""
        store, delta, epoch = self._snapshot(query.backend)
        searcher = self._searcher(query, backend, store, epoch)
        with span("searcher"):
            outcome = searcher(query.payload)
        ids = list(outcome.results)
        num_candidates = outcome.num_candidates
        num_generated = outcome.extra.get("generated")
        if delta is not None and delta.mutated:
            # Map main positions to external ids, drop tombstoned objects,
            # scan the whole delta through the backend's batched kernel, and
            # return the union sorted by id -- the answer an index rebuilt
            # from the live records would give.
            with span("delta_scan"):
                ids = [
                    delta.ids[position]
                    for position in ids
                    if delta.ids[position] not in delta.tombstones
                ]
                if delta.records:
                    delta_ids = list(delta.records)
                    matches = backend.scan_records(
                        store, query.payload, [delta.records[i] for i in delta_ids], query.tau
                    )
                    ids.extend(obj_id for obj_id, hit in zip(delta_ids, matches) if hit)
                num_candidates += len(delta.records)
                if num_generated is not None:
                    # Delta records enter the pipeline unfiltered, so they
                    # count on both sides of the filter-vs-verify funnel.
                    num_generated += len(delta.records)
                ids.sort()
        return Response(
            query=query,
            ids=ids,
            tau_effective=query.tau,
            num_candidates=num_candidates,
            num_generated=num_generated,
            candidate_time=outcome.candidate_time,
            verify_time=outcome.verify_time,
        )

    def rank_scores(
        self, backend_name: str, payload: Any, ids: Sequence[int], tau: float | int | None
    ) -> list[float]:
        """Exact rank scores of external ids, wherever the objects live.

        Main-store objects are scored through the backend's (batched)
        ``distances``; delta records are scored directly.  Used by top-k
        ranking, so scores agree bit-for-bit with an unmutated store.
        """
        backend = self.backend(backend_name)
        store, delta, _epoch = self._snapshot(backend_name)
        if delta is None or not delta.mutated:
            return backend.distances(store, payload, list(ids), tau)
        scores: list[float | None] = [None] * len(ids)
        delta_slots: list[int] = []
        delta_records: list[Any] = []
        main_slots: list[int] = []
        main_positions: list[int] = []
        for slot, obj_id in enumerate(ids):
            if obj_id in delta.records:
                delta_slots.append(slot)
                delta_records.append(delta.records[obj_id])
            else:
                main_slots.append(slot)
                main_positions.append(delta.positions[obj_id])
        for slot, score in zip(
            delta_slots, backend.record_distances(store, payload, delta_records, tau)
        ):
            scores[slot] = score
        for slot, score in zip(
            main_slots, backend.distances(store, payload, main_positions, tau)
        ):
            scores[slot] = score
        return scores

    def escalation_ladder(
        self, backend_name: str, payload: Any, start: float | int | None
    ) -> list[float | int]:
        """The top-k threshold ladder over the *live* record population."""
        backend = self.backend(backend_name)
        store, delta, _epoch = self._snapshot(backend_name)
        if delta is None or not delta.mutated or not backend.ladder_uses_max_size:
            return list(backend.tau_ladder(store, payload, start))
        if not delta.records and not delta.tombstones:
            # Post-compaction (or all mutations cancelled out): the live
            # population IS the main store, so skip the O(live) size scan
            # and let the backend compute its own maximum as usual.
            return list(backend.tau_ladder(store, payload, start))
        records = backend.store_records(store)
        sizes = [
            backend.record_size(store, records[position])
            for position, _obj_id in delta.live_main()
        ]
        sizes.extend(backend.record_size(store, record) for record in delta.records.values())
        return list(
            backend.tau_ladder(store, payload, start, max_size=max(sizes, default=1))
        )

    def metrics_wire(self) -> dict:
        """The engine's metrics registry as a JSON-safe wire dump."""
        return self._stats.registry.to_wire()

    def recent_traces(self, last: int | None = None) -> list[dict]:
        """Most recent trace documents, newest first."""
        return self._traces.snapshot(last)

    def search(self, query: Query) -> Response:
        """Answer one query (thresholded selection, or top-k when ``k`` is set)."""
        backend = self.backend(query.backend)
        backend.check_algorithm(query.algorithm)
        if query.tau is not None:
            backend.validate_tau(query.tau)
        self.store(query.backend)  # fail fast when nothing is attached
        trace = token = None
        if query.trace_id is not None and obs.current_trace() is None:
            trace = obs.Trace(query.trace_id, name="engine")
            token = obs.activate(trace)
        try:
            response = self._search_impl(query, backend)
        finally:
            if trace is not None:
                obs.deactivate(token)
        if trace is not None:
            trace.finish()
            response.trace = trace.to_dict()
            self._traces.add(response.trace)
        return response

    def _search_impl(self, query: Query, backend: Backend) -> Response:
        key = self._cache_key(query, backend)
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._stats.observe_hit()
                with span("cache_hit"):
                    return replace(hit, query=query, cached=True)
        timer = Timer()
        if query.k is not None:
            response = run_topk(self, query)
        else:
            response = self._search_threshold(query, backend)
        response.engine_time = timer.elapsed()
        with self._lock:
            self._stats.observe_miss()
            if query.k is None:
                # Top-k queries are accounted through their escalation rungs
                # (each an ordinary engine search); counting the aggregate
                # response too would double every rung's time and candidates.
                self._stats.observe_query(query.backend, response)
            if self._cache_size:
                # Store a trace-free copy: a later hit must not serve this
                # request's timeline.
                self._cache[key] = replace(response, trace=None)
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return response

    def search_batch(
        self,
        queries: Sequence[Query],
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> list[Response]:
        """Answer a batch, optionally on a thread pool; order is preserved."""
        queries = list(queries)
        if not queries:
            return []
        if not parallel or len(queries) == 1:
            return [self.search(query) for query in queries]
        workers = max_workers or self._max_workers or min(8, len(queries))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.search, queries))
