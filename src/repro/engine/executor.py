"""The query execution layer: one engine, four domains, batched serving.

:class:`SearchEngine` owns the attached domain stores and answers
:class:`repro.engine.api.Query` objects through the backend registry.  It
adds the serving-layer machinery the per-domain searchers do not have:

* a **searcher cache** -- searcher construction (per algorithm / tau / chain
  length) happens once and is reused across queries;
* an **LRU result cache** keyed on ``(backend, query, tau, chain_length,
  algorithm, k)`` plus the store and mutation epochs, so a mutation can
  never serve a stale answer;
* **online mutation** -- :meth:`SearchEngine.mutate` applies a batch of
  upserts/deletes to a per-backend :class:`repro.engine.mutation.DeltaStore`
  (delta records answered by exact linear scan, tombstones filtered from
  main answers); :meth:`SearchEngine.upsert` / :meth:`SearchEngine.delete`
  are one-op shims over it, and :meth:`SearchEngine.compact` folds the
  overlay into a rebuilt main index;
* **durability** -- :meth:`SearchEngine.attach_wal` puts a write-ahead log
  (:mod:`repro.engine.wal`) under the mutation path: batches are appended
  and fsynced before the caller is acknowledged (``durability="wal"``),
  replayed into the overlay on attach, and truncated at every checkpoint
  (:meth:`SearchEngine.save_index` or a compaction swap);
  :meth:`SearchEngine.enable_auto_compaction` arms a background
  delta-size/scan-cost crossover policy that compacts off the write path;
* **batched and thread-pooled parallel execution** with order-preserving
  results;
* **latency statistics** per backend, served as views over the
  :class:`repro.common.obs.MetricsRegistry` (one code path feeds
  ``/stats``, ``/metrics`` and the funnel aggregates); and
* **top-k search** delegated to :mod:`repro.engine.topk`.

The engine is thread-safe: shared state is touched only under an internal
lock, which is never held while a searcher runs.  Mutations are atomic
(copy-on-write overlays swapped under the lock) and writers are serialised
per backend by a dedicated writer lock, so WAL order always matches apply
order.  Compaction rebuilds off the write path: mutations that land during
the rebuild are buffered and replayed onto the compacted overlay at the
swap, so no acknowledged write is ever lost to a racing compaction.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import replace
from typing import Any, Hashable, Sequence

import numpy as np

from repro.common import obs
from repro.common.diag import TailSampler
from repro.common.obs import MetricsRegistry, span
from repro.common.stats import Timer
from repro.engine import backends as _backends  # noqa: F401 - populate registry
from repro.engine.api import Query, Response
from repro.engine.backend import Backend, get_backend
from repro.engine.mutation import DeltaStore
from repro.engine.persistence import Container, load_container, save_container
from repro.engine.topk import run_topk
from repro.engine.wal import (
    DURABILITY_LEVELS,
    AutoCompactionPolicy,
    WriteAheadLog,
    apply_op,
    op_from_wire,
    op_to_wire,
    replay_batches,
)


class BackendStats:
    """Read-only funnel view of one backend, derived from the registry.

    Mirrors the attribute surface the old per-backend ``QueryStats``
    aggregates exposed, but every number is read straight from the metrics
    registry -- there is exactly one bookkeeping code path.
    """

    __slots__ = ("_registry", "_backend")

    def __init__(self, registry: MetricsRegistry, backend: str) -> None:
        self._registry = registry
        self._backend = backend

    def _value(self, name: str) -> float:
        instrument = self._registry.get(name, backend=self._backend)
        return instrument.value if instrument is not None else 0.0

    @property
    def num_queries(self) -> int:
        return int(self._value("engine_backend_queries_total"))

    @property
    def total_generated(self) -> int:
        return int(self._value("engine_candidates_generated_total"))

    @property
    def total_candidates(self) -> int:
        return int(self._value("engine_candidates_verified_total"))

    @property
    def total_results(self) -> int:
        return int(self._value("engine_results_total"))

    def _stage_time(self, stage: str) -> float:
        instrument = self._registry.get(
            "engine_stage_seconds_total", backend=self._backend, stage=stage
        )
        return instrument.value if instrument is not None else 0.0

    @property
    def total_candidate_time(self) -> float:
        return self._stage_time("candidates")

    @property
    def total_verify_time(self) -> float:
        return self._stage_time("verify")

    @property
    def avg_generated(self) -> float:
        n = self.num_queries
        return self.total_generated / n if n else 0.0

    @property
    def avg_candidates(self) -> float:
        n = self.num_queries
        return self.total_candidates / n if n else 0.0

    @property
    def avg_results(self) -> float:
        n = self.num_queries
        return self.total_results / n if n else 0.0

    @property
    def avg_candidate_time(self) -> float:
        n = self.num_queries
        return self.total_candidate_time / n if n else 0.0

    @property
    def avg_verify_time(self) -> float:
        n = self.num_queries
        return self.total_verify_time / n if n else 0.0

    @property
    def avg_total_time(self) -> float:
        n = self.num_queries
        return (self.total_candidate_time + self.total_verify_time) / n if n else 0.0

    def latency_quantile_ms(self, q: float) -> float:
        hist = self._registry.get("engine_query_seconds", backend=self._backend)
        return hist.quantile(q) * 1000.0 if hist is not None else 0.0


class EngineStats:
    """Aggregate serving statistics of one :class:`SearchEngine`.

    Counters track *served* tau-selections: a top-k query contributes its
    escalation rungs (each an ordinary engine search) rather than being
    counted again as an aggregate; cache hit/miss counters cover every
    request, including top-k aggregates.

    All numbers live in a :class:`repro.common.obs.MetricsRegistry`; the
    attributes and :meth:`snapshot` below are views over it, so ``/stats``,
    ``/metrics`` and the funnel averages can never disagree.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._queries = r.counter(
            "engine_queries_total", "tau-selections served (top-k rungs count individually)"
        )
        self._hits = r.counter("engine_cache_hits_total", "result-cache hits")
        self._misses = r.counter("engine_cache_misses_total", "result-cache misses")
        self._time = r.counter(
            "engine_time_seconds_total", "wall seconds spent inside the engine"
        )
        self._backends: set[str] = set()

    # -- write path (called by the engine under its lock) -------------------

    def observe_hit(self) -> None:
        self._hits.inc()

    def observe_miss(self) -> None:
        self._misses.inc()

    def observe_query(self, backend: str, response: Response) -> None:
        """Fold one answered tau-selection into the registry."""
        self._backends.add(backend)
        r = self.registry
        generated = response.num_generated
        if generated is None:
            # Searchers that do not track a pre-chain count (the scalar
            # baselines) fall back to the candidate count, making the filter
            # look free rather than wrong.
            generated = response.num_candidates
        self._queries.inc()
        self._time.inc(response.engine_time)
        r.counter("engine_backend_queries_total", "queries answered", backend=backend).inc()
        r.counter(
            "engine_candidates_generated_total",
            "objects that entered the filter pipeline (pre-chain)",
            backend=backend,
        ).inc(int(generated))
        r.counter(
            "engine_candidates_verified_total",
            "objects that reached verification (filter output)",
            backend=backend,
        ).inc(response.num_candidates)
        r.counter(
            "engine_results_total", "objects that matched", backend=backend
        ).inc(response.num_results)
        r.counter(
            "engine_stage_seconds_total",
            "searcher-reported seconds per pipeline stage",
            backend=backend,
            stage="candidates",
        ).inc(response.candidate_time)
        r.counter(
            "engine_stage_seconds_total",
            "searcher-reported seconds per pipeline stage",
            backend=backend,
            stage="verify",
        ).inc(response.verify_time)
        # The query's trace id (when tracing is on) becomes the owning
        # bucket's exemplar, linking a slow bucket to its replayable trace.
        r.histogram(
            "engine_query_seconds", "per-query engine latency", backend=backend
        ).observe(response.engine_time, trace_id=response.query.trace_id)

    # -- read path -----------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return int(self._queries.value)

    @property
    def cache_hits(self) -> int:
        return int(self._hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._misses.value)

    @property
    def engine_time(self) -> float:
        return self._time.value

    @property
    def per_backend(self) -> dict[str, BackendStats]:
        return {name: BackendStats(self.registry, name) for name in sorted(self._backends)}

    @property
    def avg_engine_time(self) -> float:
        return self.engine_time / self.num_queries if self.num_queries else 0.0

    def snapshot(self) -> dict:
        """A JSON-friendly view (used by the CLI and the smoke benchmark)."""
        return {
            "num_queries": self.num_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "engine_time_s": self.engine_time,
            "avg_engine_time_ms": self.avg_engine_time * 1000.0,
            "per_backend": {
                name: {
                    "num_queries": stats.num_queries,
                    # The filter-vs-verify funnel: objects that entered the
                    # pipeline, objects that reached verification, objects
                    # that matched -- plus where the time went per stage.
                    "avg_generated_candidates": stats.avg_generated,
                    "avg_candidates": stats.avg_candidates,
                    "avg_results": stats.avg_results,
                    "avg_candidate_time_ms": stats.avg_candidate_time * 1000.0,
                    "avg_verify_time_ms": stats.avg_verify_time * 1000.0,
                    "avg_total_time_ms": stats.avg_total_time * 1000.0,
                    "p50_ms": stats.latency_quantile_ms(0.50),
                    "p95_ms": stats.latency_quantile_ms(0.95),
                    "p99_ms": stats.latency_quantile_ms(0.99),
                }
                for name, stats in self.per_backend.items()
            },
        }


def _tau_key(tau: float | int | None) -> Hashable:
    """Cache-key form of a threshold that keeps int and float taus distinct.

    The distinction is semantic for the sets backend (int = overlap,
    float = Jaccard), and ``hash(1) == hash(1.0)`` would merge them.
    """
    if tau is None:
        return None
    is_int = isinstance(tau, (int, np.integer)) and not isinstance(tau, bool)
    return (float(tau), is_int)


class SearchEngine:
    """A unified serving layer over the four similarity-search domains.

    Args:
        cache_size: capacity of the LRU result cache (0 disables it).
        max_workers: default thread-pool width for parallel batches.
    """

    def __init__(self, cache_size: int = 1024, max_workers: int | None = None):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._stores: dict[str, Any] = {}
        # Bumped whenever a backend's store is replaced; part of every
        # searcher/result cache key, so entries built against a replaced
        # store can never be served again (even by a search that raced the
        # replacement).
        self._epochs: dict[str, int] = {}
        # Bumped on every upsert/delete; part of the *result* cache key only
        # -- a mutation invalidates cached answers but the searchers, which
        # serve the unchanged main store, stay warm.
        self._mutation_epochs: dict[str, int] = {}
        # Per-backend delta/tombstone overlay (None for immutable backends).
        self._deltas: dict[str, DeltaStore | None] = {}
        self._searchers: dict[tuple, Any] = {}
        self._cache: OrderedDict[tuple, Response] = OrderedDict()
        self._cache_size = cache_size
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._stats = EngineStats()
        # Tail-sampling ring at full budget: keeps everything like the old
        # TraceBuffer, but callers embedding the engine can reach in and
        # tighten the budget without a code change.
        self._traces = TailSampler(capacity=128)
        # Durability state.  Writers are serialised per backend by a writer
        # lock (always taken OUTSIDE self._lock), so the WAL append order is
        # the overlay apply order -- the invariant replay depends on.
        self._writer_locks: dict[str, threading.Lock] = {}
        self._wals: dict[str, WriteAheadLog] = {}
        # WAL seq already folded into the last persisted container; replay
        # after a crash skips batches at or below it.
        self._checkpoint_seqs: dict[str, int] = {}
        self._container_dirs: dict[str, str] = {}
        # Compaction-in-flight bookkeeping: ops that land during a rebuild
        # are buffered here and replayed onto the compacted overlay at swap.
        self._compacting: dict[str, bool] = {}
        self._pending_ops: dict[str, list[dict]] = {}
        self._auto_policies: dict[str, AutoCompactionPolicy] = {}
        self._compaction_threads: dict[str, threading.Thread] = {}
        self._compaction_counts: dict[str, int] = {}
        self._compaction_errors: dict[str, str | None] = {}

    # -- dataset management ------------------------------------------------

    def add_dataset(self, backend_name: str, dataset: Any) -> Any:
        """Attach a domain dataset; the backend builds its store/index once."""
        backend = get_backend(backend_name)
        store = backend.prepare(dataset)
        delta = backend.delta_store(store) if backend.mutable else None
        with self._lock:
            self._stores[backend_name] = store
            self._deltas[backend_name] = delta
            self._epochs[backend_name] = self._epochs.get(backend_name, 0) + 1
            # A fresh dataset invalidates any WAL history: detach the log
            # (the caller re-attaches one against the new state) and reset
            # the checkpoint bookkeeping.
            stale_wal = self._wals.pop(backend_name, None)
            self._checkpoint_seqs[backend_name] = 0
            self._container_dirs.pop(backend_name, None)
            self._evict_backend_state(backend_name)
            self._observe_backend_state(backend_name)
        if stale_wal is not None:
            stale_wal.close()
        return store

    def backend(self, backend_name: str) -> Backend:
        return get_backend(backend_name)

    def store(self, backend_name: str) -> Any:
        try:
            return self._stores[backend_name]
        except KeyError:
            attached = ", ".join(sorted(self._stores)) or "(none)"
            raise KeyError(
                f"no dataset attached for backend {backend_name!r}; "
                f"attached backends: {attached}"
            ) from None

    def attached_backends(self) -> list[str]:
        return sorted(self._stores)

    def _evict_backend_state(self, backend_name: str) -> None:
        """Drop cached searchers/results that refer to a replaced store."""
        self._searchers = {
            key: value for key, value in self._searchers.items() if key[0] != backend_name
        }
        for key in [key for key in self._cache if key[0] == backend_name]:
            del self._cache[key]

    def _invalidate_results(self, backend_name: str) -> None:
        """Evict cached responses after a mutation; searchers stay warm.

        The epoch bump also fences any search that raced the mutation: its
        response was keyed under the old mutation epoch and can never be
        served again, even though it may have seen the new overlay.
        """
        self._mutation_epochs[backend_name] = self._mutation_epochs.get(backend_name, 0) + 1
        for key in [key for key in self._cache if key[0] == backend_name]:
            del self._cache[key]

    def _observe_backend_state(self, backend_name: str) -> None:
        """Refresh the epoch / delta-store gauges after a state change."""
        r = self._stats.registry
        r.gauge("engine_store_epoch", "main-store rebuild epoch", backend=backend_name).set(
            self._epochs.get(backend_name, 0)
        )
        r.gauge("engine_mutation_epoch", "upsert/delete epoch", backend=backend_name).set(
            self._mutation_epochs.get(backend_name, 0)
        )
        delta = self._deltas.get(backend_name)
        if delta is not None:
            r.gauge(
                "engine_delta_records", "records in the delta store", backend=backend_name
            ).set(len(delta.records))
            r.gauge(
                "engine_delta_tombstones", "tombstoned main ids", backend=backend_name
            ).set(len(delta.tombstones))

    # -- persistence -------------------------------------------------------

    def save_index(
        self, backend_name: str, directory: str, queries: Sequence[Any] | None = None
    ) -> dict:
        """Persist the attached store (and optional workload) to ``directory``.

        A live delta/tombstone overlay is persisted alongside the main store,
        so upserts and deletes survive a save/load round trip without forcing
        a compaction first.  With a WAL attached this is a **checkpoint**:
        the manifest records the WAL sequence number the saved state folds
        in, and the log is truncated up to it afterwards, keeping replay
        bounded.  The writer lock is held across the save so the (store,
        overlay, seq) triple on disk is always consistent.
        """
        with self._writer_lock(backend_name):
            with self._lock:
                store = self.store(backend_name)
                delta = self._deltas.get(backend_name)
                wal = self._wals.get(backend_name)
                if wal is not None:
                    seq = wal.last_seq
                else:
                    seq = self._checkpoint_seqs.get(backend_name, 0)
            manifest = save_container(
                self.backend(backend_name), store, directory, queries, delta=delta, wal_seq=seq
            )
            with self._lock:
                self._container_dirs[backend_name] = directory
                if wal is not None:
                    self._checkpoint_seqs[backend_name] = seq
            if wal is not None:
                wal.truncate_upto(seq)
        return manifest

    def load_index(self, directory: str) -> Container:
        """Load a container and attach its store; returns the container."""
        container = load_container(directory)
        backend = container.backend
        delta = container.delta
        if delta is None and backend.mutable:
            delta = backend.delta_store(container.store)
        with self._lock:
            name = backend.name
            self._stores[name] = container.store
            self._deltas[name] = delta
            self._epochs[name] = self._epochs.get(name, 0) + 1
            stale_wal = self._wals.pop(name, None)
            self._checkpoint_seqs[name] = container.wal_seq
            self._container_dirs[name] = directory
            self._evict_backend_state(name)
            self._observe_backend_state(name)
        if stale_wal is not None:
            stale_wal.close()
        return container

    # -- mutation ----------------------------------------------------------

    def delta(self, backend_name: str) -> DeltaStore | None:
        """The backend's current overlay (None for immutable backends)."""
        self.store(backend_name)  # fail fast when nothing is attached
        with self._lock:
            return self._deltas.get(backend_name)

    def _require_mutable(self, backend_name: str) -> tuple[Backend, Any]:
        backend = self.backend(backend_name)
        store = self.store(backend_name)
        if not backend.mutable:
            raise NotImplementedError(
                f"backend {backend_name!r} does not support online mutation"
            )
        return backend, store

    def _writer_lock(self, backend_name: str) -> threading.Lock:
        """The per-backend writer lock (always acquired OUTSIDE ``_lock``)."""
        with self._lock:
            lock = self._writer_locks.get(backend_name)
            if lock is None:
                lock = threading.Lock()
                self._writer_locks[backend_name] = lock
            return lock

    def mutate(
        self, backend_name: str, ops: Sequence[dict], durability: str | None = None
    ) -> dict:
        """Apply one batch of mixed upserts and deletes atomically.

        Each op is ``{"op": "upsert", "record": ..., "id": optional}`` or
        ``{"op": "delete", "id": ...}``.  The whole batch is validated before
        any state changes (an invalid record rejects the batch without
        partial application), applied under the writer lock, and -- when a
        WAL is attached -- written as **one** WAL record, fsynced before
        returning when ``durability`` is ``"wal"`` (the default with a WAL).
        ``durability="memory"`` appends without the fsync: the batch rides
        to disk with the next synced batch or checkpoint (group commit).

        Returns ``{"backend", "results", "durability", "wal_seq"}`` with one
        result per op in order: upserts report their assigned ``id``,
        deletes report ``deleted``.
        """
        backend, store = self._require_mutable(backend_name)
        ops = list(ops)
        if not ops:
            raise ValueError("mutation batch is empty")
        checked: list[dict] = []
        for op in ops:
            kind = op.get("op") if isinstance(op, dict) else None
            if kind == "upsert":
                record = backend.check_record(store, op.get("record"))
                obj_id = op.get("id")
                if obj_id is not None:
                    obj_id = int(obj_id)
                    if obj_id < 0:
                        raise ValueError(f"object ids are non-negative, got {obj_id}")
                checked.append({"op": "upsert", "record": record, "id": obj_id})
            elif kind == "delete":
                if op.get("id") is None:
                    raise ValueError("delete ops require an id")
                checked.append({"op": "delete", "id": int(op["id"])})
            else:
                raise ValueError(f"unknown mutation op {kind!r}")
        with self._writer_lock(backend_name):
            wal = self._wals.get(backend_name)
            level = durability if durability is not None else ("wal" if wal else "memory")
            if level not in DURABILITY_LEVELS:
                accepted = ", ".join(DURABILITY_LEVELS)
                raise ValueError(f"unknown durability {level!r} (accepted: {accepted})")
            if level == "wal" and wal is None:
                raise ValueError(
                    f"durability 'wal' requires a WAL attached to backend {backend_name!r}"
                )
            results: list[dict] = []
            applied: list[dict] = []
            with self._lock:
                delta = self._deltas[backend_name]
                for op in checked:
                    if op["op"] == "upsert":
                        delta, assigned = delta.with_upsert(op["record"], op["id"])
                        applied.append({"op": "upsert", "record": op["record"], "id": assigned})
                        results.append({"op": "upsert", "id": assigned})
                    else:
                        delta, deleted = delta.with_delete(op["id"])
                        applied.append({"op": "delete", "id": op["id"]})
                        results.append({"op": "delete", "id": op["id"], "deleted": deleted})
                self._deltas[backend_name] = delta
                if self._compacting.get(backend_name):
                    # A rebuild is in flight against an older overlay
                    # snapshot; buffer the ops (with their assigned ids) so
                    # the swap can replay them onto the compacted overlay.
                    self._pending_ops[backend_name].extend(applied)
                self._invalidate_results(backend_name)
                self._observe_backend_state(backend_name)
            seq = None
            append_s = 0.0
            if wal is not None:
                wire_ops = [op_to_wire(backend, op) for op in applied]
                append_start = time.perf_counter()
                seq = wal.append(backend_name, wire_ops, sync=level == "wal")
                append_s = time.perf_counter() - append_start
            r = self._stats.registry
            r.counter(
                "engine_mutation_batches_total", "mutation batches applied", backend=backend_name
            ).inc()
            for op, result in zip(applied, results):
                r.counter(
                    "engine_mutation_ops_total",
                    "mutation ops applied",
                    backend=backend_name,
                    op=op["op"],
                ).inc()
            if seq is not None:
                r.gauge(
                    "engine_wal_last_seq", "last appended WAL batch", backend=backend_name
                ).set(seq)
                r.counter(
                    "wal_appended_batches_total",
                    "batches appended to the WAL",
                    backend=backend_name,
                ).inc()
                r.counter(
                    "wal_bytes_total",
                    "bytes appended to the WAL",
                    backend=backend_name,
                ).inc(wal.last_append_bytes)
                if level == "wal":
                    r.histogram(
                        "wal_fsync_seconds",
                        "synced WAL append latency (write + flush + fsync)",
                        backend=backend_name,
                    ).observe(append_s)
        self._maybe_auto_compact(backend_name)
        return {"backend": backend_name, "results": results, "durability": level, "wal_seq": seq}

    def upsert(
        self,
        backend_name: str,
        record: Any,
        obj_id: int | None = None,
        durability: str | None = None,
    ) -> int:
        """Insert a new record (``obj_id=None``) or overwrite an existing id.

        One-op shim over :meth:`mutate`; returns the record's external id.
        """
        outcome = self.mutate(
            backend_name, [{"op": "upsert", "record": record, "id": obj_id}], durability
        )
        return outcome["results"][0]["id"]

    def delete(self, backend_name: str, obj_id: int, durability: str | None = None) -> bool:
        """Remove one id (tombstoning its main copy); True if it was live.

        One-op shim over :meth:`mutate`.
        """
        outcome = self.mutate(backend_name, [{"op": "delete", "id": obj_id}], durability)
        return outcome["results"][0]["deleted"]

    def compact(self, backend_name: str) -> dict:
        """Fold the delta store into a rebuilt main index, off the write path.

        Rebuilding costs one full index construction over the live records
        -- the same price as the original build.  Searches run concurrently
        against the old store until the swap, and so do *writers*: mutations
        that land during the rebuild apply to the served overlay as usual
        and are buffered, then replayed onto the compacted overlay at the
        swap, so none are lost.  With a WAL attached (and a known container
        directory) the swap also checkpoints: the compacted container is
        saved atomically and the WAL truncated at the swap-point sequence
        number.  Returns a summary of what was folded.
        """
        backend, _ = self._require_mutable(backend_name)
        with self._lock:
            if self._compacting.get(backend_name):
                raise RuntimeError(f"compaction already in progress for {backend_name!r}")
            store = self.store(backend_name)
            delta = self._deltas[backend_name]
            before = delta.summary()
            if delta.is_identity:
                return {"backend": backend_name, "compacted": False, **before}
            self._compacting[backend_name] = True
            self._pending_ops[backend_name] = []
        compact_start = time.perf_counter()
        try:
            new_store, new_delta = backend.apply_mutations(store, delta)
        except BaseException:
            with self._lock:
                self._compacting[backend_name] = False
                self._pending_ops.pop(backend_name, None)
            raise
        with self._writer_lock(backend_name):
            with self._lock:
                for op in self._pending_ops.pop(backend_name, []):
                    new_delta = apply_op(new_delta, op)
                self._stores[backend_name] = new_store
                self._deltas[backend_name] = new_delta
                self._epochs[backend_name] = self._epochs.get(backend_name, 0) + 1
                self._evict_backend_state(backend_name)
                self._observe_backend_state(backend_name)
                self._compacting[backend_name] = False
                wal = self._wals.get(backend_name)
                directory = self._container_dirs.get(backend_name)
                if wal is not None:
                    seq = wal.last_seq
                else:
                    seq = self._checkpoint_seqs.get(backend_name, 0)
            checkpointed = False
            if wal is not None and directory is not None:
                # The writer lock is still held: the saved (store, overlay,
                # seq) triple cannot be raced by another writer, and the
                # truncation drops exactly the batches the save folded in.
                save_container(backend, new_store, directory, delta=new_delta, wal_seq=seq)
                with self._lock:
                    self._checkpoint_seqs[backend_name] = seq
                wal.truncate_upto(seq)
                checkpointed = True
        r = self._stats.registry
        r.counter(
            "engine_compactions_total", "compaction runs completed", backend=backend_name
        ).inc()
        r.histogram(
            "engine_compaction_seconds", "compaction wall time", backend=backend_name
        ).observe(time.perf_counter() - compact_start)
        return {
            "backend": backend_name,
            "compacted": True,
            "folded_records": before["delta_records"],
            "dropped_tombstones": before["num_tombstones"],
            "checkpointed": checkpointed,
            **new_delta.summary(),
        }

    def mutation_info(self, backend_name: str) -> dict:
        """Overlay counters of one backend (``/stats`` and CLI surface)."""
        backend = self.backend(backend_name)
        self.store(backend_name)
        if not backend.mutable:
            return {"backend": backend_name, "mutable": False}
        with self._lock:
            delta = self._deltas[backend_name]
        return {"backend": backend_name, "mutable": True, **delta.summary()}

    # -- durability --------------------------------------------------------

    def attach_wal(self, backend_name: str, path: str, replay: bool = True) -> dict:
        """Attach a write-ahead log to one backend, replaying its history.

        Opening the log discards any torn or corrupted tail, then every
        batch with a sequence number past the loaded container's checkpoint
        is replayed into the delta store -- after this call the served
        state is exactly the acknowledged mutation history.  Once attached,
        every :meth:`mutate` batch is appended to the log (and fsynced
        before acknowledgment at the default ``"wal"`` durability).

        Returns a summary of the attach (including ``replayed_batches``).
        """
        backend, _ = self._require_mutable(backend_name)
        with self._writer_lock(backend_name):
            if self._wals.get(backend_name) is not None:
                raise RuntimeError(f"backend {backend_name!r} already has a WAL attached")
            wal = WriteAheadLog(path)
            checkpoint = self._checkpoint_seqs.get(backend_name, 0)
            replayed = 0
            with self._lock:
                delta = self._deltas[backend_name]
                if replay:
                    for batch in wal.batches():
                        if batch.seq <= checkpoint:
                            continue
                        if batch.backend and batch.backend != backend_name:
                            wal.close()
                            raise ValueError(
                                f"WAL {path!r} belongs to backend {batch.backend!r}, "
                                f"not {backend_name!r}"
                            )
                        for doc in batch.ops:
                            delta = apply_op(delta, op_from_wire(backend, doc))
                        replayed += 1
                self._deltas[backend_name] = delta
                self._invalidate_results(backend_name)
                self._observe_backend_state(backend_name)
                wal.resume_from(checkpoint)
                self._wals[backend_name] = wal
        return {
            "backend": backend_name,
            "checkpoint_seq": checkpoint,
            "replayed_batches": replayed,
            **wal.describe(),
        }

    def replay_wal(self, backend_name: str, path: str) -> dict:
        """Fold a WAL's unapplied suffix into the overlay without attaching.

        The replicated serving tier keeps one WAL per shard **in the
        parent** -- the shared lineage every replica of the shard
        acknowledges against.  Replica engines never append to it; they only
        replay whatever suffix is past their own applied mark, so calling
        this repeatedly (catch-up polling) is idempotent and cheap: batches
        at or below the current applied sequence (the container checkpoint,
        or a previous replay) are skipped.

        Returns ``{"backend", "applied_seq", "replayed_batches"}``.
        """
        backend, _ = self._require_mutable(backend_name)
        with self._writer_lock(backend_name):
            replayed = 0
            with self._lock:
                applied = self._checkpoint_seqs.get(backend_name, 0)
                delta = self._deltas[backend_name]
                for batch in replay_batches(path, after_seq=applied):
                    if batch.backend and batch.backend != backend_name:
                        raise ValueError(
                            f"WAL {path!r} belongs to backend {batch.backend!r}, "
                            f"not {backend_name!r}"
                        )
                    ops = [op_from_wire(backend, doc) for doc in batch.ops]
                    for op in ops:
                        delta = apply_op(delta, op)
                    if self._compacting.get(backend_name):
                        self._pending_ops[backend_name].extend(ops)
                    applied = batch.seq
                    replayed += 1
                self._deltas[backend_name] = delta
                self._checkpoint_seqs[backend_name] = applied
                if replayed:
                    self._invalidate_results(backend_name)
                    self._observe_backend_state(backend_name)
        return {
            "backend": backend_name,
            "applied_seq": applied,
            "replayed_batches": replayed,
        }

    def applied_seq(self, backend_name: str) -> int:
        """The WAL sequence this engine's state covers (checkpoint + replays)."""
        with self._lock:
            return self._checkpoint_seqs.get(backend_name, 0)

    def advance_applied_seq(self, backend_name: str, seq: int) -> int:
        """Record that the state now covers the parent-assigned ``seq``.

        In the replicated write protocol the replica applies a sub-batch
        first and the parent appends it to the shared WAL afterwards; the
        parent hands over the sequence number it is about to assign so the
        replica's applied mark stays aligned with the lineage (and
        :meth:`save_index` checkpoints at the right sequence).  Never moves
        the mark backwards.
        """
        with self._lock:
            current = self._checkpoint_seqs.get(backend_name, 0)
            self._checkpoint_seqs[backend_name] = max(current, int(seq))
            return self._checkpoint_seqs[backend_name]

    def detach_wal(self, backend_name: str) -> None:
        """Close and detach the backend's WAL (later mutates are memory-only)."""
        with self._writer_lock(backend_name):
            with self._lock:
                wal = self._wals.pop(backend_name, None)
            if wal is not None:
                wal.close()

    def close(self) -> None:
        """Release held OS resources: detach (and close) every attached WAL.

        The engine stays queryable afterwards -- mutations just stop being
        logged -- so ``close()`` is safe to call from teardown paths that
        may still answer in-flight reads.  Idempotent.
        """
        with self._lock:
            names = list(self._wals)
        for name in names:
            self.detach_wal(name)

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def enable_auto_compaction(
        self, backend_name: str, policy: AutoCompactionPolicy | None = None
    ) -> AutoCompactionPolicy:
        """Arm background compaction for one backend.

        After every mutation batch the policy's delta-size / scan-cost
        crossover (:meth:`repro.engine.wal.AutoCompactionPolicy.
        should_compact`, fed by the funnel's average generated-candidates
        stat) is evaluated; when it fires, :meth:`compact` runs on a
        background thread -- rebuild off the write path, buffered-op replay
        at the swap, and a WAL checkpoint when one is attached.
        """
        self._require_mutable(backend_name)
        policy = policy if policy is not None else AutoCompactionPolicy()
        with self._lock:
            self._auto_policies[backend_name] = policy
        return policy

    def disable_auto_compaction(self, backend_name: str) -> None:
        with self._lock:
            self._auto_policies.pop(backend_name, None)

    def _maybe_auto_compact(self, backend_name: str) -> None:
        """Fire the auto-compaction policy after a mutation batch, at most once."""
        policy = self._auto_policies.get(backend_name)
        if policy is None:
            return
        with self._lock:
            if self._compacting.get(backend_name):
                return
            thread = self._compaction_threads.get(backend_name)
            if thread is not None and thread.is_alive():
                return
            delta = self._deltas.get(backend_name)
            if delta is None:
                return
            stats = BackendStats(self._stats.registry, backend_name)
            if not policy.should_compact(len(delta.records), stats.avg_generated):
                return
            thread = threading.Thread(
                target=self._auto_compact,
                args=(backend_name,),
                name=f"auto-compact-{backend_name}",
                daemon=True,
            )
            self._compaction_threads[backend_name] = thread
        thread.start()

    def _auto_compact(self, backend_name: str) -> None:
        try:
            self.compact(backend_name)
        except Exception as exc:  # surfaced via durability_info, never raised
            with self._lock:
                self._compaction_errors[backend_name] = repr(exc)
            return
        with self._lock:
            self._compaction_counts[backend_name] = (
                self._compaction_counts.get(backend_name, 0) + 1
            )
            self._compaction_errors[backend_name] = None
        self._stats.registry.counter(
            "engine_auto_compactions_total",
            "background compactions completed",
            backend=backend_name,
        ).inc()

    def wait_for_compaction(self, backend_name: str, timeout: float | None = None) -> bool:
        """Block until any in-flight background compaction finishes."""
        with self._lock:
            thread = self._compaction_threads.get(backend_name)
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def durability_info(self, backend_name: str) -> dict:
        """WAL, checkpoint and auto-compaction state of one backend."""
        backend = self.backend(backend_name)
        self.store(backend_name)
        if not backend.mutable:
            return {"backend": backend_name, "mutable": False}
        with self._lock:
            wal = self._wals.get(backend_name)
            policy = self._auto_policies.get(backend_name)
            delta = self._deltas[backend_name]
            info = {
                "backend": backend_name,
                "mutable": True,
                "default_durability": "wal" if wal is not None else "memory",
                "checkpoint_seq": self._checkpoint_seqs.get(backend_name, 0),
                "checkpoint_dir": self._container_dirs.get(backend_name),
                "delta": delta.summary(),
                "auto_compaction": {"enabled": False},
            }
            if policy is not None:
                info["auto_compaction"] = {
                    "enabled": True,
                    **policy.summary(),
                    "in_flight": bool(self._compacting.get(backend_name)),
                    "compactions": self._compaction_counts.get(backend_name, 0),
                    "last_error": self._compaction_errors.get(backend_name),
                }
        info["wal"] = {"attached": False} if wal is None else {"attached": True, **wal.describe()}
        return info

    # -- execution ---------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = EngineStats()

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def _cache_key(self, query: Query, backend: Backend) -> tuple:
        return (
            query.backend,
            self._epochs.get(query.backend, 0),
            self._mutation_epochs.get(query.backend, 0),
            backend.query_key(query.payload),
            _tau_key(query.tau),
            query.chain_length,
            query.algorithm,
            query.k,
        )

    def _searcher(self, query: Query, backend: Backend, store: Any, epoch: int) -> Any:
        """The cached searcher for ``store``, which was read at ``epoch``.

        The key uses the epoch captured *together with* the store snapshot:
        keying on the current epoch instead would let a compaction that
        lands between the snapshot and this call cache an old-store
        searcher under the new epoch, poisoning every later query.
        """
        key = (
            query.backend,
            epoch,
            query.algorithm,
            _tau_key(query.tau),
            query.chain_length,
        )
        with self._lock:
            searcher = self._searchers.get(key)
        if searcher is not None:
            return searcher
        searcher = backend.make_searcher(store, query.algorithm, query.tau, query.chain_length)
        with self._lock:
            self._searchers.setdefault(key, searcher)
        return searcher

    def _snapshot(self, backend_name: str) -> tuple[Any, DeltaStore | None, int]:
        """The current (store, overlay, store epoch), read atomically."""
        with self._lock:
            return (
                self.store(backend_name),
                self._deltas.get(backend_name),
                self._epochs.get(backend_name, 0),
            )

    def _search_threshold(self, query: Query, backend: Backend) -> Response:
        """One tau-selection: main index answer merged with the delta scan."""
        store, delta, epoch = self._snapshot(query.backend)
        searcher = self._searcher(query, backend, store, epoch)
        with span("searcher"):
            outcome = searcher(query.payload)
        ids = list(outcome.results)
        num_candidates = outcome.num_candidates
        num_generated = outcome.extra.get("generated")
        if delta is not None and delta.mutated:
            # Map main positions to external ids, drop tombstoned objects,
            # scan the whole delta through the backend's batched kernel, and
            # return the union sorted by id -- the answer an index rebuilt
            # from the live records would give.
            with span("delta_scan"):
                ids = [
                    delta.ids[position]
                    for position in ids
                    if delta.ids[position] not in delta.tombstones
                ]
                if delta.records:
                    delta_ids = list(delta.records)
                    matches = backend.scan_records(
                        store, query.payload, [delta.records[i] for i in delta_ids], query.tau
                    )
                    ids.extend(obj_id for obj_id, hit in zip(delta_ids, matches) if hit)
                num_candidates += len(delta.records)
                if num_generated is not None:
                    # Delta records enter the pipeline unfiltered, so they
                    # count on both sides of the filter-vs-verify funnel.
                    num_generated += len(delta.records)
                ids.sort()
        return Response(
            query=query,
            ids=ids,
            tau_effective=query.tau,
            num_candidates=num_candidates,
            num_generated=num_generated,
            candidate_time=outcome.candidate_time,
            verify_time=outcome.verify_time,
        )

    def rank_scores(
        self, backend_name: str, payload: Any, ids: Sequence[int], tau: float | int | None
    ) -> list[float]:
        """Exact rank scores of external ids, wherever the objects live.

        Main-store objects are scored through the backend's (batched)
        ``distances``; delta records are scored directly.  Used by top-k
        ranking, so scores agree bit-for-bit with an unmutated store.
        """
        backend = self.backend(backend_name)
        store, delta, _epoch = self._snapshot(backend_name)
        if delta is None or not delta.mutated:
            return backend.distances(store, payload, list(ids), tau)
        scores: list[float | None] = [None] * len(ids)
        delta_slots: list[int] = []
        delta_records: list[Any] = []
        main_slots: list[int] = []
        main_positions: list[int] = []
        for slot, obj_id in enumerate(ids):
            if obj_id in delta.records:
                delta_slots.append(slot)
                delta_records.append(delta.records[obj_id])
            else:
                main_slots.append(slot)
                main_positions.append(delta.positions[obj_id])
        for slot, score in zip(
            delta_slots, backend.record_distances(store, payload, delta_records, tau)
        ):
            scores[slot] = score
        for slot, score in zip(
            main_slots, backend.distances(store, payload, main_positions, tau)
        ):
            scores[slot] = score
        return scores

    def escalation_ladder(
        self, backend_name: str, payload: Any, start: float | int | None
    ) -> list[float | int]:
        """The top-k threshold ladder over the *live* record population."""
        backend = self.backend(backend_name)
        store, delta, _epoch = self._snapshot(backend_name)
        if delta is None or not delta.mutated or not backend.ladder_uses_max_size:
            return list(backend.tau_ladder(store, payload, start))
        if not delta.records and not delta.tombstones:
            # Post-compaction (or all mutations cancelled out): the live
            # population IS the main store, so skip the O(live) size scan
            # and let the backend compute its own maximum as usual.
            return list(backend.tau_ladder(store, payload, start))
        records = backend.store_records(store)
        sizes = [
            backend.record_size(store, records[position])
            for position, _obj_id in delta.live_main()
        ]
        sizes.extend(backend.record_size(store, record) for record in delta.records.values())
        return list(
            backend.tau_ladder(store, payload, start, max_size=max(sizes, default=1))
        )

    def metrics_wire(self) -> dict:
        """The engine's metrics registry as a JSON-safe wire dump.

        The snapshot is taken while holding every per-backend writer lock
        (in sorted order, never under ``_lock``): a mutation batch updates
        several instruments under its writer lock, so a scrape racing a
        batch would otherwise observe ``engine_mutation_batches_total``
        without the matching op counters -- torn between instruments.
        """
        with self._lock:
            locks = [self._writer_locks[name] for name in sorted(self._writer_locks)]
        with ExitStack() as stack:
            for lock in locks:
                stack.enter_context(lock)
            return self._stats.registry.to_wire()

    def recent_traces(self, last: int | None = None) -> list[dict]:
        """Most recent trace documents, newest first."""
        return self._traces.snapshot(last)

    def search(self, query: Query) -> Response:
        """Answer one query (thresholded selection, or top-k when ``k`` is set)."""
        backend = self.backend(query.backend)
        backend.check_algorithm(query.algorithm)
        if query.tau is not None:
            backend.validate_tau(query.tau)
        self.store(query.backend)  # fail fast when nothing is attached
        trace = token = None
        if query.trace_id is not None and obs.current_trace() is None:
            trace = obs.Trace(query.trace_id, name="engine")
            token = obs.activate(trace)
        try:
            response = self._search_impl(query, backend)
        finally:
            if trace is not None:
                obs.deactivate(token)
        if trace is not None:
            trace.finish()
            response.trace = trace.to_dict()
            self._traces.add(response.trace)
        return response

    def _search_impl(self, query: Query, backend: Backend) -> Response:
        key = self._cache_key(query, backend)
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._stats.observe_hit()
                with span("cache_hit"):
                    return replace(hit, query=query, cached=True)
        timer = Timer()
        if query.k is not None:
            response = run_topk(self, query)
        else:
            response = self._search_threshold(query, backend)
        response.engine_time = timer.elapsed()
        with self._lock:
            self._stats.observe_miss()
            if query.k is None:
                # Top-k queries are accounted through their escalation rungs
                # (each an ordinary engine search); counting the aggregate
                # response too would double every rung's time and candidates.
                self._stats.observe_query(query.backend, response)
            if self._cache_size:
                # Store a trace-free copy: a later hit must not serve this
                # request's timeline.
                self._cache[key] = replace(response, trace=None)
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return response

    def search_batch(
        self,
        queries: Sequence[Query],
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> list[Response]:
        """Answer a batch, optionally on a thread pool; order is preserved."""
        queries = list(queries)
        if not queries:
            return []
        if not parallel or len(queries) == 1:
            return [self.search(query) for query in queries]
        workers = max_workers or self._max_workers or min(8, len(queries))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.search, queries))
