"""The query execution layer: one engine, four domains, batched serving.

:class:`SearchEngine` owns the attached domain stores and answers
:class:`repro.engine.api.Query` objects through the backend registry.  It
adds the serving-layer machinery the per-domain searchers do not have:

* a **searcher cache** -- searcher construction (per algorithm / tau / chain
  length) happens once and is reused across queries;
* an **LRU result cache** keyed on ``(backend, query, tau, chain_length,
  algorithm, k)``;
* **batched and thread-pooled parallel execution** with order-preserving
  results;
* **latency statistics** per backend, aggregated with
  :class:`repro.common.stats.QueryStats`; and
* **top-k search** delegated to :mod:`repro.engine.topk`.

The engine is thread-safe: shared state is touched only under an internal
lock, which is never held while a searcher runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Sequence

import numpy as np

from repro.common.stats import QueryStats, Timer
from repro.engine import backends as _backends  # noqa: F401 - populate registry
from repro.engine.api import Query, Response
from repro.engine.backend import Backend, get_backend
from repro.engine.persistence import Container, load_container, save_container
from repro.engine.topk import run_topk


@dataclass
class EngineStats:
    """Aggregate serving statistics of one :class:`SearchEngine`.

    Counters track *served* tau-selections: a top-k query contributes its
    escalation rungs (each an ordinary engine search) rather than being
    counted again as an aggregate; cache hit/miss counters cover every
    request, including top-k aggregates.
    """

    num_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    engine_time: float = 0.0
    per_backend: dict[str, QueryStats] = field(default_factory=dict)

    @property
    def avg_engine_time(self) -> float:
        return self.engine_time / self.num_queries if self.num_queries else 0.0

    def snapshot(self) -> dict:
        """A JSON-friendly view (used by the CLI and the smoke benchmark)."""
        return {
            "num_queries": self.num_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "engine_time_s": self.engine_time,
            "avg_engine_time_ms": self.avg_engine_time * 1000.0,
            "per_backend": {
                name: {
                    "num_queries": stats.num_queries,
                    "avg_candidates": stats.avg_candidates,
                    "avg_results": stats.avg_results,
                    "avg_total_time_ms": stats.avg_total_time * 1000.0,
                }
                for name, stats in self.per_backend.items()
            },
        }


def _tau_key(tau: float | int | None) -> Hashable:
    """Cache-key form of a threshold that keeps int and float taus distinct.

    The distinction is semantic for the sets backend (int = overlap,
    float = Jaccard), and ``hash(1) == hash(1.0)`` would merge them.
    """
    if tau is None:
        return None
    is_int = isinstance(tau, (int, np.integer)) and not isinstance(tau, bool)
    return (float(tau), is_int)


class SearchEngine:
    """A unified serving layer over the four similarity-search domains.

    Args:
        cache_size: capacity of the LRU result cache (0 disables it).
        max_workers: default thread-pool width for parallel batches.
    """

    def __init__(self, cache_size: int = 1024, max_workers: int | None = None):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._stores: dict[str, Any] = {}
        # Bumped whenever a backend's store is replaced; part of every
        # searcher/result cache key, so entries built against a replaced
        # store can never be served again (even by a search that raced the
        # replacement).
        self._epochs: dict[str, int] = {}
        self._searchers: dict[tuple, Any] = {}
        self._cache: OrderedDict[tuple, Response] = OrderedDict()
        self._cache_size = cache_size
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._stats = EngineStats()

    # -- dataset management ------------------------------------------------

    def add_dataset(self, backend_name: str, dataset: Any) -> Any:
        """Attach a domain dataset; the backend builds its store/index once."""
        backend = get_backend(backend_name)
        store = backend.prepare(dataset)
        with self._lock:
            self._stores[backend_name] = store
            self._epochs[backend_name] = self._epochs.get(backend_name, 0) + 1
            self._evict_backend_state(backend_name)
        return store

    def backend(self, backend_name: str) -> Backend:
        return get_backend(backend_name)

    def store(self, backend_name: str) -> Any:
        try:
            return self._stores[backend_name]
        except KeyError:
            attached = ", ".join(sorted(self._stores)) or "(none)"
            raise KeyError(
                f"no dataset attached for backend {backend_name!r}; "
                f"attached backends: {attached}"
            ) from None

    def attached_backends(self) -> list[str]:
        return sorted(self._stores)

    def _evict_backend_state(self, backend_name: str) -> None:
        """Drop cached searchers/results that refer to a replaced store."""
        self._searchers = {
            key: value for key, value in self._searchers.items() if key[0] != backend_name
        }
        for key in [key for key in self._cache if key[0] == backend_name]:
            del self._cache[key]

    # -- persistence -------------------------------------------------------

    def save_index(
        self, backend_name: str, directory: str, queries: Sequence[Any] | None = None
    ) -> dict:
        """Persist the attached store (and optional workload) to ``directory``."""
        return save_container(
            self.backend(backend_name), self.store(backend_name), directory, queries
        )

    def load_index(self, directory: str) -> Container:
        """Load a container and attach its store; returns the container."""
        container = load_container(directory)
        with self._lock:
            name = container.backend.name
            self._stores[name] = container.store
            self._epochs[name] = self._epochs.get(name, 0) + 1
            self._evict_backend_state(name)
        return container

    # -- execution ---------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = EngineStats()

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def _cache_key(self, query: Query, backend: Backend) -> tuple:
        return (
            query.backend,
            self._epochs.get(query.backend, 0),
            backend.query_key(query.payload),
            _tau_key(query.tau),
            query.chain_length,
            query.algorithm,
            query.k,
        )

    def _searcher(self, query: Query, backend: Backend) -> Any:
        with self._lock:
            store = self.store(query.backend)
            key = (
                query.backend,
                self._epochs.get(query.backend, 0),
                query.algorithm,
                _tau_key(query.tau),
                query.chain_length,
            )
            searcher = self._searchers.get(key)
        if searcher is not None:
            return searcher
        searcher = backend.make_searcher(store, query.algorithm, query.tau, query.chain_length)
        with self._lock:
            self._searchers.setdefault(key, searcher)
        return searcher

    def search(self, query: Query) -> Response:
        """Answer one query (thresholded selection, or top-k when ``k`` is set)."""
        backend = self.backend(query.backend)
        backend.check_algorithm(query.algorithm)
        self.store(query.backend)  # fail fast when nothing is attached
        key = self._cache_key(query, backend)
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._stats.cache_hits += 1
                return replace(hit, query=query, cached=True)
        timer = Timer()
        if query.k is not None:
            response = run_topk(self, query)
        else:
            searcher = self._searcher(query, backend)
            outcome = searcher(query.payload)
            response = Response(
                query=query,
                ids=list(outcome.results),
                tau_effective=query.tau,
                num_candidates=outcome.num_candidates,
                candidate_time=outcome.candidate_time,
                verify_time=outcome.verify_time,
            )
        response.engine_time = timer.elapsed()
        with self._lock:
            self._stats.cache_misses += 1
            if query.k is None:
                # Top-k queries are accounted through their escalation rungs
                # (each an ordinary engine search); counting the aggregate
                # response too would double every rung's time and candidates.
                self._stats.num_queries += 1
                self._stats.engine_time += response.engine_time
                self._stats.per_backend.setdefault(query.backend, QueryStats()).add(response)
            if self._cache_size:
                self._cache[key] = response
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return response

    def search_batch(
        self,
        queries: Sequence[Query],
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> list[Response]:
        """Answer a batch, optionally on a thread pool; order is preserved."""
        queries = list(queries)
        if not queries:
            return []
        if not parallel or len(queries) == 1:
            return [self.search(query) for query in queries]
        workers = max_workers or self._max_workers or min(8, len(queries))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.search, queries))
