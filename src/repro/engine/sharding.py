"""Sharded multi-process serving: one dataset, K id-range shards, N replicas.

A single :class:`repro.engine.executor.SearchEngine` serves from one process;
its thread pool helps little for the CPU-bound searchers.  This module scales
the engine across processes the way partition-parallel data systems do:

* :func:`build_shards` splits a dataset into ``K`` contiguous id ranges
  (``Backend.shard_store``), builds one index container per shard -- each a
  regular :mod:`repro.engine.persistence` container -- and writes a
  ``shards.json`` manifest tying them together.
* :class:`ShardedEngine` runs one :class:`repro.engine.replication.
  ReplicaSet` per shard -- ``replicas`` single-worker
  ``ProcessPoolExecutor`` pools sharing the shard's WAL lineage.  Each
  worker loads its shard container **once at startup** into a private
  :class:`SearchEngine` and reuses it for every query; queries fan out to
  all shards (one live replica each, with transparent failover) and the
  parent merges the partial answers.

Merging is exact:

* thresholded selection -- shards partition the id space, so the answer is
  the disjoint union of the shard answers, returned sorted by global id;
* top-k -- every shard answers its local top-k with exact scores, and a
  k-way heap merge on ``(score, global id)`` keeps the best ``k``.  Because
  any global top-k member is necessarily in its own shard's top-k, the merged
  answer is identical (ids, scores and tie-breaks) to a single-shard top-k.

With ``replicas > 1`` the engine is self-healing: a supervisor thread
respawns dead replicas in the background, replays the shard's write-ahead
log past the container checkpoint, and readmits each replica only once its
``wal_seq`` has caught up (see :mod:`repro.engine.replication` for the
apply-then-log write protocol and the rolling-compaction state machine).

The parent tracks per-shard latency and merge overhead in
:class:`ShardedStats`; the workers' own :class:`repro.engine.executor.
EngineStats` snapshots are reachable through :meth:`ShardedEngine.
worker_stats`, so the whole stats layer stays observable across the
process boundary.
"""

from __future__ import annotations

import functools
import heapq
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from itertools import islice
from typing import Any, Iterator, Sequence

from repro.common import diag
from repro.common.obs import MetricsRegistry
from repro.common.stats import Timer
from repro.engine.api import Query, Response
from repro.engine.backend import get_backend
from repro.engine.persistence import atomic_write_json, save_container
from repro.engine.replication import (
    LIVE,
    ReplicaSet,
    ShardWorkerError,
    _init_worker,
    _worker_durability_info,
    _worker_flush,
    _worker_metrics,
    _worker_mutation_info,
    _worker_profile_wire,
    _worker_search,
    _worker_search_many,
    _worker_start_profiler,
    _worker_stats,
    _worker_stop_profiler,
    _worker_wait_for_compaction,
)
from repro.engine.wal import AutoCompactionPolicy, WriteAheadLog
from repro.engine.wire import parse_session

__all__ = [
    "SHARDS_MANIFEST_NAME",
    "SHARDS_FORMAT_VERSION",
    "SUPPORTED_SHARDS_FORMAT_VERSIONS",
    "ShardWorkerError",
    "ShardStats",
    "ShardedStats",
    "ShardedEngine",
    "build_shards",
    "load_shards_manifest",
    "merge_threshold",
    "merge_topk",
    "shard_dirname",
    "split_ranges",
]

SHARDS_MANIFEST_NAME = "shards.json"
#: Version 1 is the original frozen layout; version 2 adds mutation fields
#: (``next_id``, per-shard live counters) written by :meth:`ShardedEngine.
#: flush`.  Fresh builds still write version 1 -- a sharded index is saved
#: at the lowest version that can represent it -- and readers accept both.
SHARDS_FORMAT_VERSION = 2
SUPPORTED_SHARDS_FORMAT_VERSIONS = frozenset({1, 2})


# ---------------------------------------------------------------------------
# Shard layout
# ---------------------------------------------------------------------------


def split_ranges(num_objects: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced id ranges covering ``range(num_objects)``.

    The first ``num_objects % num_shards`` shards hold one extra object.  At
    most ``num_objects`` shards are produced (every shard must hold at least
    one object, because the domain datasets reject being empty).
    """
    if num_objects < 1:
        raise ValueError("cannot shard an empty dataset")
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    num_shards = min(num_shards, num_objects)
    base, extra = divmod(num_objects, num_shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for shard_id in range(num_shards):
        hi = lo + base + (1 if shard_id < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def shard_dirname(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


def build_shards(
    backend_name: str,
    dataset: Any,
    directory: str,
    num_shards: int,
    queries: Sequence[Any] | None = None,
) -> dict:
    """Split a dataset into id-range shards and persist one container each.

    ``directory`` ends up holding ``shards.json``, one container subdirectory
    per shard, and (optionally) the query workload saved at the top level.
    Returns the shard manifest.
    """
    backend = get_backend(backend_name)
    store = backend.prepare(dataset)
    num_objects = backend.store_size(store)
    ranges = split_ranges(num_objects, num_shards)
    os.makedirs(directory, exist_ok=True)
    shards = []
    for shard_id, (lo, hi) in enumerate(ranges):
        path = shard_dirname(shard_id)
        shard_store = backend.prepare(backend.shard_store(store, lo, hi))
        container_manifest = save_container(backend, shard_store, os.path.join(directory, path))
        shards.append(
            {
                "shard_id": shard_id,
                "lo": lo,
                "hi": hi,
                "path": path,
                "descriptor": container_manifest["descriptor"],
            }
        )
    manifest = {
        "format_version": 1,
        "backend": backend.name,
        "num_objects": num_objects,
        "num_shards": len(shards),
        # Recorded at build time (JSON keeps the int/float distinction, which
        # is semantic for the sets backend) so serving needs no full store.
        "default_tau": backend.default_tau(store),
        "shards": shards,
    }
    if queries is not None:
        backend.save_queries(queries, directory)
        manifest["num_queries"] = len(queries)
    atomic_write_json(os.path.join(directory, SHARDS_MANIFEST_NAME), manifest, indent=2)
    return manifest


def load_shards_manifest(directory: str) -> dict:
    path = os.path.join(directory, SHARDS_MANIFEST_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"{directory!r} is not a sharded index (no {SHARDS_MANIFEST_NAME})")
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version not in SUPPORTED_SHARDS_FORMAT_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_SHARDS_FORMAT_VERSIONS))
        raise ValueError(f"unsupported shards format {version!r} (supported: {supported})")
    return manifest


# ---------------------------------------------------------------------------
# Result merging (pure functions, unit-testable without processes)
# ---------------------------------------------------------------------------


def merge_threshold(parts: Sequence[dict]) -> list[int]:
    """Union of disjoint per-shard threshold answers, sorted by global id."""
    ids: list[int] = []
    for part in parts:
        ids.extend(part["ids"])
    ids.sort()
    return ids


def merge_topk(parts: Sequence[dict], k: int) -> tuple[list[int], list[float]]:
    """K-way heap merge of per-shard top-k answers.

    Every part carries ``ids`` and exact ``scores`` already sorted ascending
    by ``(score, global id)`` -- the order :mod:`repro.engine.topk` emits --
    so a heap merge of the ``(score, id)`` streams yields the global order,
    with ties broken by global id exactly as in the single-shard path.
    """
    streams: list[Iterator[tuple[float, int]]] = [
        iter(zip(part["scores"], part["ids"])) for part in parts
    ]
    best = list(islice(heapq.merge(*streams), k))
    return [obj_id for _score, obj_id in best], [score for score, _obj_id in best]


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ShardStats:
    """Parent-observed serving totals for one shard (a registry view)."""

    __slots__ = ("_registry", "_shard")

    def __init__(self, registry: MetricsRegistry, shard_id: int) -> None:
        self._registry = registry
        self._shard = str(shard_id)

    def _value(self, name: str) -> float:
        instrument = self._registry.get(name, shard=self._shard)
        return instrument.value if instrument is not None else 0.0

    @property
    def num_queries(self) -> int:
        return int(self._value("sharded_shard_queries_total"))

    @property
    def worker_time(self) -> float:
        return self._value("sharded_shard_seconds_total")

    @property
    def max_worker_time(self) -> float:
        return self._value("sharded_shard_max_seconds")

    @property
    def worker_errors(self) -> int:
        return int(self._value("sharded_worker_errors_total"))

    @property
    def failovers(self) -> int:
        return int(self._value("sharded_failovers_total"))


class ShardedStats:
    """Aggregate fan-out/merge statistics of one :class:`ShardedEngine`.

    ``merge_time`` is the pure result-combination overhead.  ``fanout_time``
    is wall time attributed to queries: for :meth:`ShardedEngine.search` it
    is the per-query submit-to-merged span (so ``fanout_time - max
    per-shard worker time`` approximates the IPC cost); for
    :meth:`ShardedEngine.search_batch` each chunk's incremental wall time is
    amortised over the chunk's queries, so the total equals the batch wall
    time and ``avg_fanout_time_ms`` is the inverse of batch throughput.

    Every number lives in a :class:`repro.common.obs.MetricsRegistry` (the
    parent's half of ``/metrics``; the workers' registries are merged in by
    :meth:`ShardedEngine.metrics_wire`).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._queries = r.counter("sharded_queries_total", "queries fanned out to the shards")
        self._fanout = r.counter(
            "sharded_fanout_seconds_total", "wall seconds attributed to fan-out"
        )
        self._merge = r.counter(
            "sharded_merge_seconds_total", "wall seconds combining shard answers"
        )
        self._num_shards = 0

    def add_shard(self) -> int:
        shard_id = self._num_shards
        self._num_shards += 1
        shard = str(shard_id)
        r = self.registry
        r.counter("sharded_shard_queries_total", "queries answered by this shard", shard=shard)
        r.counter("sharded_shard_seconds_total", "worker seconds on this shard", shard=shard)
        r.gauge("sharded_shard_max_seconds", "slowest query on this shard", shard=shard)
        r.counter(
            "sharded_worker_errors_total", "worker process failures on this shard", shard=shard
        )
        r.counter(
            "sharded_failovers_total",
            "reads retried transparently on a sibling replica",
            shard=shard,
        )
        return shard_id

    def observe_query(self, fanout_s: float, merge_s: float, parts: Sequence[dict]) -> None:
        r = self.registry
        self._queries.inc()
        self._fanout.inc(fanout_s)
        self._merge.inc(merge_s)
        r.histogram("sharded_merge_seconds", "per-query merge latency").observe(merge_s)
        for shard_id, part in enumerate(parts):
            shard = str(shard_id)
            seconds = part["engine_time"]
            r.counter("sharded_shard_queries_total", shard=shard).inc()
            r.counter("sharded_shard_seconds_total", shard=shard).inc(seconds)
            gauge = r.gauge("sharded_shard_max_seconds", shard=shard)
            if seconds > gauge.value:
                gauge.set(seconds)
            r.histogram(
                "sharded_shard_seconds", "per-query worker latency", shard=shard
            ).observe(seconds)

    def observe_worker_error(self, shard_id: int) -> None:
        self.registry.counter("sharded_worker_errors_total", shard=str(shard_id)).inc()

    def observe_failover(self, shard_id: int) -> None:
        self.registry.counter("sharded_failovers_total", shard=str(shard_id)).inc()

    @property
    def num_queries(self) -> int:
        return int(self._queries.value)

    @property
    def fanout_time(self) -> float:
        return self._fanout.value

    @property
    def merge_time(self) -> float:
        return self._merge.value

    @property
    def per_shard(self) -> list[ShardStats]:
        return [ShardStats(self.registry, shard_id) for shard_id in range(self._num_shards)]

    def snapshot(self) -> dict:
        queries = self.num_queries
        return {
            "num_queries": queries,
            "fanout_time_s": self.fanout_time,
            "merge_time_s": self.merge_time,
            "avg_fanout_time_ms": 1000.0 * self.fanout_time / queries if queries else 0.0,
            "avg_merge_time_ms": 1000.0 * self.merge_time / queries if queries else 0.0,
            "per_shard": [
                {
                    "shard_id": shard_id,
                    "num_queries": stats.num_queries,
                    "worker_time_s": stats.worker_time,
                    "avg_worker_time_ms": (
                        1000.0 * stats.worker_time / stats.num_queries
                        if stats.num_queries
                        else 0.0
                    ),
                    "max_worker_time_ms": 1000.0 * stats.max_worker_time,
                    "worker_errors": stats.worker_errors,
                    "failovers": stats.failovers,
                }
                for shard_id, stats in enumerate(self.per_shard)
            ],
        }


class ShardedEngine:
    """Data-partitioned parallel serving over a sharded index directory.

    Args:
        directory: a directory produced by :func:`build_shards`.
        cache_size: LRU result-cache capacity of every worker engine
            (0, the default, disables caching -- benchmarks measure serving).
        mp_context: optional :mod:`multiprocessing` context name
            (``"fork"`` / ``"spawn"`` / ``"forkserver"``); ``None`` uses the
            platform default.
        wal_dir: when set, the parent owns one write-ahead log per shard at
            ``<wal_dir>/<shard dir>.wal``; workers replay it at startup and
            the parent appends acknowledged batches (apply-then-log), making
            acknowledged mutations crash-durable per shard.
        auto_compact: let the supervisor thread fold each shard's delta
            store into a rebuilt index when the compaction policy says so
            (only meaningful together with ``wal_dir``).
        replicas: worker processes per shard.  With ``replicas > 1``
            (requires ``wal_dir``) each shard becomes a self-healing
            :class:`~repro.engine.replication.ReplicaSet`: reads fail over
            transparently, dead replicas respawn in the background, and
            :meth:`compact` rolls over the replicas without blocking writes.

    Workers load their shard once, inside the constructor (a readiness
    barrier), so the first query pays no cold-start cost.  Use as a context
    manager or call :meth:`close` to release the worker processes.
    """

    def __init__(
        self,
        directory: str,
        cache_size: int = 0,
        mp_context: str | None = None,
        wal_dir: str | None = None,
        auto_compact: bool = False,
        replicas: int = 1,
    ):
        import multiprocessing

        self._manifest = load_shards_manifest(directory)
        self._directory = directory
        self._backend = get_backend(self._manifest["backend"])
        self._next_id = int(self._manifest.get("next_id", self._manifest["num_objects"]))
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        if replicas > 1 and wal_dir is None:
            raise ValueError("replicas > 1 requires wal_dir (the shared WAL lineage)")
        self._wal_dir = wal_dir
        self._num_replicas = replicas
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
        self._mp_context = (
            multiprocessing.get_context(mp_context) if mp_context is not None else None
        )
        self._sets: list[ReplicaSet] = []
        self._pools: list[ProcessPoolExecutor] = []
        self._wals: list[WriteAheadLog | None] = []
        self._wal_paths: list[str | None] = []
        self._supervisor: diag.Supervisor | None = None
        self._auto_policy = AutoCompactionPolicy() if auto_compact else None
        self._tick_count = 0
        self._stats = ShardedStats()
        self._traces = diag.TailSampler(capacity=128)
        self._health = diag.HealthScoreboard(len(self._manifest["shards"]))
        self._profile_hz: float | None = None
        try:
            for shard_id, shard in enumerate(self._manifest["shards"]):
                wal_path = (
                    os.path.join(wal_dir, f"{shard['path']}.wal") if wal_dir is not None else None
                )
                wal = WriteAheadLog(wal_path) if wal_path is not None else None
                initargs = (
                    os.path.join(directory, shard["path"]),
                    shard["lo"],
                    cache_size,
                    wal_path,
                )
                self._wals.append(wal)
                self._wal_paths.append(wal_path)
                self._sets.append(
                    ReplicaSet(
                        shard_id,
                        spawn=functools.partial(self._spawn_pool, initargs),
                        num_replicas=replicas,
                        wal=wal,
                        backend=self._manifest["backend"],
                        on_death=functools.partial(self._observe_replica_death, shard_id),
                        on_failover=functools.partial(self._observe_failover, shard_id),
                    )
                )
                self._stats.add_shard()
            # Start every replica of every shard, then collect the readiness
            # barriers: every worker has loaded its shard (and, with a WAL,
            # replayed its acknowledged mutation history).
            for rset in self._sets:
                rset.spawn()
            for rset in self._sets:
                rset.await_ready()
            self._pools = [rset.replicas[0].pool for rset in self._sets]
            if wal_dir is not None:
                # WAL replay may have advanced a shard's local id high-water
                # mark past what the (possibly stale, crash-survived) shards
                # manifest recorded.
                self._refresh_next_id()
            if replicas > 1 or (auto_compact and wal_dir is not None):
                self._supervisor = diag.Supervisor(
                    self._supervise_tick, interval_s=0.2, name="replica-supervisor"
                )
                self._supervisor.start()
        except BaseException:
            self.close()
            raise

    def _spawn_pool(self, initargs: tuple) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=initargs,
        )

    def _observe_replica_death(self, shard_id: int) -> None:
        self._stats.observe_worker_error(shard_id)
        self._health.observe(shard_id, error=True)

    def _observe_failover(self, shard_id: int) -> None:
        self._stats.observe_failover(shard_id)

    def _refresh_next_id(self) -> None:
        """Raise the global id high-water mark to cover every shard's overlay."""
        for shard_id, shard in enumerate(self._manifest["shards"]):
            info = self._shard_result(
                shard_id, self._submit_to_shard(shard_id, _worker_mutation_info)
            )
            self._next_id = max(self._next_id, int(info["next_id"]) + shard["lo"])

    def respawn_shard(self, shard_id: int) -> None:
        """Replace every worker process of one shard with fresh ones.

        Each new worker reloads the shard container and -- when serving with
        a WAL -- replays the shard's log before being readmitted, so every
        acknowledged mutation survives the respawn even if the old worker
        died mid-write (``kill -9`` included).
        """
        self._require_open()
        rset = self._sets[shard_id]
        wal_path = self._wal_paths[shard_id]
        for replica in rset.replicas:
            rset.respawn(replica, wal_path)
        self._pools[shard_id] = rset.replicas[0].pool
        if self._profile_hz is not None:
            # The old workers took their profilers with them; re-arm.
            for replica in rset.replicas:
                replica.pool.submit(_worker_start_profiler, self._profile_hz).result()
        if self._wal_dir is not None:
            self._refresh_next_id()

    def _supervise_tick(self) -> None:
        """One supervisor sweep: heal dead replicas, drive auto-compaction."""
        self._tick_count += 1
        if self._num_replicas > 1:
            for shard_id, rset in enumerate(self._sets):
                healed = rset.heal(self._wal_paths[shard_id])
                if not healed:
                    continue
                self._pools[shard_id] = rset.replicas[0].pool
                if self._profile_hz is not None:
                    for replica in healed:
                        try:
                            replica.pool.submit(
                                _worker_start_profiler, self._profile_hz
                            ).result()
                        except Exception:
                            # A healed replica without a profiler still
                            # serves; count it rather than fail the sweep.
                            self._stats.observe_worker_error(shard_id)
                            continue
        if (
            self._auto_policy is not None
            and self._wal_dir is not None
            and self._tick_count % 10 == 0
        ):
            for shard_id, rset in enumerate(self._sets):
                if rset.compacting:
                    continue
                try:
                    info = rset.submit(_worker_mutation_info).result()
                except ShardWorkerError:
                    continue
                if self._auto_policy.should_compact(int(info["delta_records"]), 0.0):
                    try:
                        self._compact_shard(shard_id)
                    except (ShardWorkerError, RuntimeError):
                        continue

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down; the engine is unusable afterwards."""
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.stop()
        sets, self._sets = self._sets, []
        self._pools = []
        for rset in sets:
            rset.close()
        wals, self._wals = self._wals, []
        for wal in wals:
            if wal is not None:
                wal.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    @property
    def manifest(self) -> dict:
        return self._manifest

    @property
    def num_shards(self) -> int:
        return self._manifest["num_shards"]

    @property
    def num_replicas(self) -> int:
        return self._num_replicas

    @property
    def backend_name(self) -> str:
        return self._manifest["backend"]

    def default_tau(self) -> float | int:
        """The build-time default threshold recorded in the manifest."""
        return self._manifest["default_tau"]

    @property
    def stats(self) -> ShardedStats:
        return self._stats

    def reset_stats(self) -> None:
        self._stats = ShardedStats()
        for _rset in self._sets:
            self._stats.add_shard()
        self._health = diag.HealthScoreboard(len(self._sets))

    def load_queries(self) -> list[Any] | None:
        """The workload persisted next to the shards, if any."""
        return self._backend.load_queries(self._directory)

    def worker_stats(self) -> list[dict]:
        """One worker engine's EngineStats snapshot per shard, in order."""
        return [
            self._shard_result(shard_id, self._submit_to_shard(shard_id, _worker_stats))
            for shard_id in range(len(self._sets))
        ]

    def metrics_wire(self) -> dict:
        """Parent registry plus every live worker's registry, merged.

        Worker histograms share bucket ladders, so the merged histogram
        answers quantile queries exactly as one that observed every shard's
        samples itself.
        """
        merged = MetricsRegistry()
        merged.merge_wire(self._stats.registry.to_wire())
        for rset in self._sets:
            for wire in rset.broadcast(_worker_metrics):
                merged.merge_wire(wire)
        return merged.to_wire()

    def recent_traces(self, last: int | None = None) -> list[dict]:
        """Most recent merged trace documents, newest first."""
        return self._traces.snapshot(last)

    def start_profiling(self, hz: float | None = None) -> None:
        """Arm a continuous sampling profiler inside every shard worker.

        Workers keep profiling between queries, so :meth:`profile_wire`
        snapshots without a measurement window; a respawned worker is
        re-armed automatically.
        """
        self._require_open()
        self._profile_hz = float(hz) if hz else diag.DEFAULT_PROFILE_HZ
        if self._num_replicas == 1:
            futures = [
                self._submit_to_shard(shard_id, _worker_start_profiler, self._profile_hz)
                for shard_id in range(len(self._sets))
            ]
            for shard_id, future in enumerate(futures):
                self._shard_result(shard_id, future)
        else:
            for rset in self._sets:
                rset.broadcast(_worker_start_profiler, self._profile_hz, ignore_errors=False)

    def stop_profiling(self) -> None:
        """Disarm every worker's profiler (tolerates already-dead workers)."""
        self._profile_hz = None
        for rset in self._sets:
            rset.broadcast(_worker_stop_profiler)

    def profile_wire(self) -> list[dict]:
        """Every armed worker's profiler snapshot (mergeable wire dumps)."""
        self._require_open()
        wires: list[dict] = []
        for rset in self._sets:
            for wire in rset.broadcast(_worker_profile_wire):
                if wire is not None:
                    wires.append(wire)
        return wires

    def shard_health(self) -> list[dict]:
        """Rolling-window per-shard health, with the replica-set view.

        The scoreboard grades request outcomes; the replica overlay refines
        it: a shard with zero live replicas is ``failing`` (it cannot
        answer), one with some replicas down or catching up is ``degraded``
        (it answers, redundancy is reduced).
        """
        report = self._health.report()
        for entry in report:
            shard_id = entry["shard"]
            if shard_id >= len(self._sets):
                continue
            replicas = self._sets[shard_id].status()
            live = sum(1 for replica in replicas if replica["state"] == LIVE)
            entry["replicas"] = replicas
            entry["num_replicas"] = len(replicas)
            entry["live_replicas"] = live
            if live == 0:
                entry["status"] = "failing"
            elif live < len(replicas):
                entry["status"] = "degraded"
        return report

    def replica_status(self) -> list[dict]:
        """Per-shard replica lifecycle view (the ``/stats`` replica table)."""
        status = []
        for shard_id, rset in enumerate(self._sets):
            wal = self._wals[shard_id]
            status.append(
                {
                    "shard_id": shard_id,
                    "num_replicas": self._num_replicas,
                    "wal_last_seq": wal.last_seq if wal is not None else None,
                    "replicas": rset.status(),
                }
            )
        return status

    # -- mutation ----------------------------------------------------------

    def _check_backend(self, backend_name: str) -> None:
        if backend_name != self.backend_name:
            raise ValueError(
                f"this sharded index serves backend {self.backend_name!r}, "
                f"got backend {backend_name!r}"
            )

    def _shard_for_id(self, obj_id: int) -> dict:
        """The shard entry owning an external id.

        Ids land in their build-time ``[lo, hi)`` range; ids appended after
        the build (``>=`` the last shard's ``hi``) belong to the last shard,
        whose range grows rightwards.
        """
        if obj_id < 0:
            raise ValueError(f"object ids are non-negative, got {obj_id}")
        shards = self._manifest["shards"]
        for shard in shards:
            if shard["lo"] <= obj_id < shard["hi"]:
                return shard
        return shards[-1]

    def _apply_to_shard(
        self, shard_id: int, local_ops: list[dict], durability: str | None
    ) -> dict:
        try:
            return self._sets[shard_id].apply(local_ops, durability)
        except ShardWorkerError:
            self._stats.observe_worker_error(shard_id)
            self._health.observe(shard_id, error=True)
            raise

    def mutate(
        self,
        backend_name: str,
        ops: Sequence[dict],
        durability: str | None = None,
    ) -> dict:
        """Apply one mutation batch, routed to the owning id-range shards.

        The parent assigns every upsert its global id up front (so routing
        is deterministic and each shard's WAL records explicit, replayable
        ids), groups the ops per shard preserving batch order, and applies
        one sub-batch per touched shard -- to *every* live replica of that
        shard, then the shard's WAL (see :meth:`repro.engine.replication.
        ReplicaSet.apply`).  Results come back in the original batch order
        with global ids; ``wal_seq`` maps each touched shard to the
        sequence number its sub-batch was acknowledged at.  A sub-batch is
        atomic per shard (one WAL record), but a failure on one shard does
        not roll back sub-batches already applied on others.
        """
        self._require_open()
        self._check_backend(backend_name)
        ops = list(ops)
        if not ops:
            raise ValueError("mutation batch is empty")
        # Validate the whole batch's structure before assigning any id, so a
        # malformed op cannot leave the batch half-routed.  Record contents
        # are validated by each worker engine against its own store (before
        # the worker applies anything).
        for op in ops:
            kind = op.get("op") if isinstance(op, dict) else None
            if kind == "upsert":
                if "record" not in op:
                    raise ValueError("upsert ops require a record")
                obj_id = op.get("id")
                if obj_id is not None and (
                    isinstance(obj_id, bool) or not isinstance(obj_id, int) or obj_id < 0
                ):
                    raise ValueError(f"object ids are non-negative, got {obj_id}")
            elif kind == "delete":
                obj_id = op.get("id")
                if obj_id is None:
                    raise ValueError("delete ops require an id")
                if isinstance(obj_id, bool) or not isinstance(obj_id, int) or obj_id < 0:
                    raise ValueError(f"object ids are non-negative, got {obj_id}")
            else:
                raise ValueError(f"unknown mutation op {kind!r}")
        # Assign global ids and route, preserving batch order per shard.
        routed: dict[int, list[tuple[int, int, dict]]] = {}
        for position, op in enumerate(ops):
            if op["op"] == "upsert":
                obj_id = op.get("id")
                if obj_id is None:
                    obj_id = self._next_id
                self._next_id = max(self._next_id, obj_id + 1)
                shard = self._shard_for_id(obj_id)
                local: dict[str, Any] = {
                    "op": "upsert",
                    "record": op["record"],
                    "id": obj_id - shard["lo"],
                }
            else:
                obj_id = op["id"]
                shard = self._shard_for_id(obj_id)
                local = {"op": "delete", "id": obj_id - shard["lo"]}
            routed.setdefault(shard["shard_id"], []).append((position, shard["lo"], local))
        outcomes: dict[int, dict] = {}
        if len(routed) == 1:
            shard_id, entries = next(iter(routed.items()))
            outcomes[shard_id] = self._apply_to_shard(
                shard_id, [local for _position, _lo, local in entries], durability
            )
        else:
            # Each shard's apply blocks on its replica fan-out and WAL
            # append; overlap the touched shards so a multi-shard batch
            # pays the slowest shard, not the sum.
            with ThreadPoolExecutor(max_workers=len(routed)) as fan:
                futures = {
                    shard_id: fan.submit(
                        self._apply_to_shard,
                        shard_id,
                        [local for _position, _lo, local in entries],
                        durability,
                    )
                    for shard_id, entries in routed.items()
                }
                for shard_id, future in futures.items():
                    outcomes[shard_id] = future.result()
        results: list[dict | None] = [None] * len(ops)
        wal_seqs: dict[str, int] = {}
        level = durability
        for shard_id, entries in routed.items():
            outcome = outcomes[shard_id]
            level = outcome["durability"]
            wal_seqs[str(shard_id)] = outcome["wal_seq"]
            for (position, lo, _local), result in zip(entries, outcome["results"]):
                doc = dict(result)
                if "id" in doc:
                    doc["id"] = int(doc["id"]) + lo
                results[position] = doc
        return {
            "backend": self.backend_name,
            "results": results,
            "durability": level,
            "wal_seq": wal_seqs,
        }

    def upsert(
        self,
        backend_name: str,
        record: Any,
        obj_id: int | None = None,
        durability: str | None = None,
    ) -> int:
        """Insert or overwrite one record (a one-op :meth:`mutate` batch)."""
        op: dict[str, Any] = {"op": "upsert", "record": record}
        if obj_id is not None:
            op["id"] = obj_id
        outcome = self.mutate(backend_name, [op], durability)
        return int(outcome["results"][0]["id"])

    def delete(
        self, backend_name: str, obj_id: int, durability: str | None = None
    ) -> bool:
        """Remove one external id (a one-op :meth:`mutate` batch)."""
        outcome = self.mutate(backend_name, [{"op": "delete", "id": obj_id}], durability)
        return bool(outcome["results"][0]["deleted"])

    def _compact_shard(self, shard_id: int) -> dict:
        rset = self._sets[shard_id]
        # Persist (and afterwards truncate the WAL) only when a WAL exists;
        # the WAL-less engine compacts in place without touching the
        # containers, exactly as the single-worker engine always has.
        persist_dir = (
            os.path.join(self._directory, self._manifest["shards"][shard_id]["path"])
            if self._wals[shard_id] is not None
            else None
        )
        summary = dict(rset.compact(persist_dir, self._wal_paths[shard_id]))
        summary["shard_id"] = shard_id
        return summary

    def compact(self, backend_name: str | None = None) -> list[dict]:
        """Fold every shard's delta store into its rebuilt main index.

        Shards compact independently (each is its own container), one shard
        at a time; within a shard the replica set rolls the rebuild over
        its replicas so the write path never blocks while siblings serve
        (see :meth:`repro.engine.replication.ReplicaSet.compact`).  Returns
        the per-shard summaries in shard order.
        """
        self._require_open()
        if backend_name is not None:
            self._check_backend(backend_name)
        return [self._compact_shard(shard_id) for shard_id in range(len(self._sets))]

    def mutation_info(self, backend_name: str | None = None) -> dict:
        """Aggregate overlay counters, plus the per-shard breakdown."""
        self._require_open()
        if backend_name is not None:
            self._check_backend(backend_name)
        per_shard = []
        for shard_id in range(len(self._sets)):
            info = dict(
                self._shard_result(
                    shard_id, self._submit_to_shard(shard_id, _worker_mutation_info)
                )
            )
            info["shard_id"] = shard_id
            per_shard.append(info)
        return {
            "backend": self.backend_name,
            "mutable": True,
            "num_tombstones": sum(info["num_tombstones"] for info in per_shard),
            "delta_records": sum(info["delta_records"] for info in per_shard),
            "num_live": sum(info["num_live"] for info in per_shard),
            "next_id": self._next_id,
            "mutated": any(info["mutated"] for info in per_shard),
            "per_shard": per_shard,
        }

    def durability_info(self, backend_name: str | None = None) -> dict:
        """Aggregate durability posture, plus the per-shard breakdown.

        The parent owns the WAL lineage (workers are replay-only readers),
        so the per-shard ``wal`` / ``default_durability`` fields come from
        the parent's logs, overriding the workers' memory-only view.
        """
        self._require_open()
        if backend_name is not None:
            self._check_backend(backend_name)
        per_shard = []
        for shard_id in range(len(self._sets)):
            info = dict(
                self._shard_result(
                    shard_id, self._submit_to_shard(shard_id, _worker_durability_info)
                )
            )
            info["shard_id"] = shard_id
            wal = self._wals[shard_id]
            info["default_durability"] = "wal" if wal is not None else "memory"
            info["wal"] = (
                {"attached": True, **wal.describe()} if wal is not None else {"attached": False}
            )
            per_shard.append(info)
        return {
            "backend": self.backend_name,
            "sharded": True,
            "wal_dir": self._wal_dir,
            "default_durability": per_shard[0]["default_durability"],
            "per_shard": per_shard,
        }

    def wait_for_compaction(self, timeout: float | None = None) -> bool:
        """Block until no shard has a background compaction in flight."""
        self._require_open()
        deadline = time.monotonic() + timeout if timeout is not None else None
        while any(rset.compacting for rset in self._sets):
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        futures = [
            self._submit_to_shard(shard_id, _worker_wait_for_compaction, timeout)
            for shard_id in range(len(self._sets))
        ]
        settled = True
        for shard_id, future in enumerate(futures):
            settled = self._shard_result(shard_id, future) and settled
        return settled

    def flush(self) -> dict:
        """Persist every shard (store + overlay) and the shards manifest.

        After ``flush`` the index directory reopens with all mutations
        intact; the manifest records the id-space high-water mark so new
        upserts keep getting fresh ids, and the last shard's range absorbs
        the ids appended since the build.  Each persisted container
        checkpoints its shard's WAL position, after which the parent
        truncates the log's folded prefix.  Returns the written manifest.
        """
        self._require_open()
        shards = self._manifest["shards"]
        infos = []
        for shard_id, shard in enumerate(shards):
            directory = os.path.join(self._directory, shard["path"])
            container_manifest = self._shard_result(
                shard_id, self._submit_to_shard(shard_id, _worker_flush, directory)
            )
            shard["descriptor"] = container_manifest["descriptor"]
            wal = self._wals[shard_id]
            if wal is not None:
                checkpoint = int(container_manifest.get("wal_seq", 0) or 0)
                if checkpoint:
                    wal.truncate_upto(checkpoint)
            info = self._shard_result(
                shard_id, self._submit_to_shard(shard_id, _worker_mutation_info)
            )
            shard["num_live"] = info["num_live"]
            infos.append(info)
        shards[-1]["hi"] = max(shards[-1]["hi"], self._next_id)
        mutated = any(info["mutated"] for info in infos)
        self._manifest["format_version"] = SHARDS_FORMAT_VERSION if mutated else 1
        self._manifest["num_objects"] = sum(info["num_live"] for info in infos)
        self._manifest["next_id"] = self._next_id
        path = os.path.join(self._directory, SHARDS_MANIFEST_NAME)
        atomic_write_json(path, self._manifest, indent=2)
        return self._manifest

    # -- serving -----------------------------------------------------------

    def _require_open(self) -> None:
        if not self._sets:
            raise RuntimeError("the sharded engine has been closed")

    def _submit_to_shard(self, shard_id: int, fn: Any, *args: Any, min_seq: int = 0) -> Any:
        try:
            return self._sets[shard_id].submit(fn, *args, min_seq=min_seq)
        except ShardWorkerError:
            self._stats.observe_worker_error(shard_id)
            self._health.observe(shard_id, error=True)
            raise

    def _shard_result(self, shard_id: int, routed: Any) -> Any:
        try:
            return routed.result()
        except ShardWorkerError:
            self._stats.observe_worker_error(shard_id)
            self._health.observe(shard_id, error=True)
            raise

    def _submit(self, query: Query) -> list[Any]:
        if query.backend != self.backend_name:
            raise ValueError(
                f"this sharded index serves backend {self.backend_name!r}, "
                f"got a query for {query.backend!r}"
            )
        floors = parse_session(query.session)
        return [
            self._submit_to_shard(
                shard_id, _worker_search, query, min_seq=floors.get(shard_id, 0)
            )
            for shard_id in range(len(self._sets))
        ]

    def _merge(self, query: Query, parts: list[dict], elapsed: float) -> Response:
        """Combine per-shard answers; ``elapsed`` is the wall time to charge
        this query for the fan-out (excluding the merge itself)."""
        merge_timer = Timer()
        if query.k is None:
            ids = merge_threshold(parts)
            scores = None
            tau_effective = query.tau
        else:
            ids, scores = merge_topk(parts, query.k)
            tau_effective = max(part["tau_effective"] for part in parts)
        merge_time = merge_timer.elapsed()
        generated = [part.get("num_generated") for part in parts]
        response = Response(
            query=query,
            ids=ids,
            scores=scores,
            tau_effective=tau_effective,
            num_candidates=sum(part["num_candidates"] for part in parts),
            # The funnel counter survives the merge only when every shard
            # reported it (scalar searchers report None).
            num_generated=(
                sum(generated) if all(value is not None for value in generated) else None
            ),
            candidate_time=sum(part["candidate_time"] for part in parts),
            verify_time=sum(part["verify_time"] for part in parts),
            engine_time=elapsed + merge_time,
        )
        self._stats.observe_query(response.engine_time, merge_time, parts)
        for shard_id, part in enumerate(parts):
            self._health.observe(shard_id, latency_s=part["engine_time"])
        if query.trace_id is not None:
            response.trace = self._build_trace(query, parts, elapsed, merge_time)
            self._traces.add(response.trace, e2e_ms=response.engine_time * 1000.0)
        return response

    def _build_trace(
        self, query: Query, parts: list[dict], fanout_s: float, merge_s: float
    ) -> dict:
        """Assemble the fan-out timeline, embedding the worker span trees.

        Worker clocks are not comparable with the parent's, so each worker's
        spans keep their worker-relative offsets and sit under a per-shard
        span whose duration is the worker-reported engine time.
        """
        shard_spans = []
        for shard_id, part in enumerate(parts):
            worker_trace = part.get("trace") or {}
            shard_spans.append(
                {
                    "name": f"shard[{shard_id}]",
                    "start_ms": 0.0,
                    "duration_ms": round(part["engine_time"] * 1000.0, 4),
                    "children": worker_trace.get("spans", []),
                }
            )
        fanout_ms = fanout_s * 1000.0
        return {
            "trace_id": query.trace_id,
            "name": "sharded",
            "duration_ms": round((fanout_s + merge_s) * 1000.0, 4),
            "spans": [
                {
                    "name": "fanout",
                    "start_ms": 0.0,
                    "duration_ms": round(fanout_ms, 4),
                    "children": shard_spans,
                },
                {
                    "name": "merge",
                    "start_ms": round(fanout_ms, 4),
                    "duration_ms": round(merge_s * 1000.0, 4),
                    "children": [],
                },
            ],
        }

    def search(self, query: Query) -> Response:
        """Fan one query out to every shard and merge the partial answers."""
        self._require_open()
        timer = Timer()
        futures = self._submit(query)
        parts = [
            self._shard_result(shard_id, future) for shard_id, future in enumerate(futures)
        ]
        return self._merge(query, parts, timer.elapsed())

    def search_batch(
        self, queries: Sequence[Query], chunk_size: int | None = None
    ) -> list[Response]:
        """Answer a batch pipelined across the shards; order is preserved.

        Queries are grouped into chunks and every chunk becomes one task per
        shard, so (a) the per-task process-pool overhead is amortised over
        the whole chunk, and (b) shard ``s`` can work on chunk ``c + 1``
        while the parent still waits on chunk ``c``'s slowest shard.  The
        default chunk size aims for a handful of chunks in flight; pass
        ``chunk_size=1`` to force per-query fan-out (lowest latency for the
        head of the batch, highest overhead).
        """
        self._require_open()
        queries = list(queries)
        if not queries:
            return []
        floors: dict[int, int] = {}
        for query in queries:
            if query.backend != self.backend_name:
                raise ValueError(
                    f"this sharded index serves backend {self.backend_name!r}, "
                    f"got a query for {query.backend!r}"
                )
            # The batch shares one routing floor per shard (the max over
            # its queries' tokens): conservative, and it keeps every chunk
            # on replicas that satisfy all of its queries.
            for shard_id, seq in parse_session(query.session).items():
                floors[shard_id] = max(floors.get(shard_id, 0), seq)
        if chunk_size is None:
            # Enough chunks to pipeline (about four per shard cycle), capped
            # so huge batches still amortise the IPC cost.
            chunk_size = max(1, min(32, len(queries) // 4))
        chunks = [
            queries[start : start + chunk_size]
            for start in range(0, len(queries), chunk_size)
        ]
        timer = Timer()
        in_flight = [
            [
                self._submit_to_shard(
                    shard_id, _worker_search_many, chunk, min_seq=floors.get(shard_id, 0)
                )
                for shard_id in range(len(self._sets))
            ]
            for chunk in chunks
        ]
        responses: list[Response] = []
        for chunk, futures in zip(chunks, in_flight):
            shard_parts = [
                self._shard_result(shard_id, future)
                for shard_id, future in enumerate(futures)
            ]
            # Wall time since the previous chunk completed, amortised over
            # this chunk's queries: summed over the batch it equals the batch
            # wall time (chunks overlap in flight, so charging each query its
            # full time-in-system would double-count the pipelining).
            share = timer.restart() / len(chunk)
            for position, query in enumerate(chunk):
                parts = [parts_of_shard[position] for parts_of_shard in shard_parts]
                responses.append(self._merge(query, parts, share))
        return responses
