"""Backend protocol and registry of the multi-domain search engine.

A *backend* adapts one of the paper's four case studies (Hamming, set,
string, graph tau-selection) to the engine's uniform query API.  Each backend
knows how to

* wrap a raw domain dataset into a servable *store* (``prepare``), building
  any persistent index exactly once,
* construct searchers for a given algorithm / threshold / chain length,
* compute the exact distance (rank score) between a query payload and one
  data object, used to order top-k results,
* produce the adaptive threshold-escalation ladder top-k search walks, and
* save / load its store to an on-disk container directory.

Backends register themselves in a process-wide registry under a short name;
the engine resolves queries through :func:`get_backend`.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.common.stats import SearchResult


class Backend(abc.ABC):
    """Adapter between one similarity domain and the engine."""

    #: registry name, e.g. ``"hamming"``.
    name: str = ""
    #: algorithm names :meth:`make_searcher` accepts.
    algorithms: tuple[str, ...] = ("ring", "baseline", "linear")

    # -- dataset lifecycle -------------------------------------------------

    def prepare(self, dataset: Any) -> Any:
        """Wrap a raw domain dataset into the store the engine serves from.

        The default is the identity; backends with a persistent index (e.g.
        Hamming's partition index) build it here, once.
        """
        return dataset

    @abc.abstractmethod
    def describe(self, store: Any) -> dict:
        """Human-readable store parameters for manifests and CLIs."""

    @abc.abstractmethod
    def default_tau(self, store: Any) -> float | int:
        """A sensible domain threshold for demos and benchmarks."""

    # -- query plumbing ----------------------------------------------------

    @abc.abstractmethod
    def query_key(self, payload: Any) -> Hashable:
        """A hashable, equality-faithful key for the result cache."""

    @abc.abstractmethod
    def make_searcher(
        self,
        store: Any,
        algorithm: str,
        tau: float | int,
        chain_length: int | None,
    ) -> Callable[[Any], SearchResult]:
        """A ``payload -> SearchResult`` callable for one configuration."""

    @abc.abstractmethod
    def distance(self, store: Any, payload: Any, obj_id: int, tau: float | int | None) -> float:
        """Exact rank score of one object (lower is better).

        For distance domains this is the distance itself; for similarity
        domains it is the negated similarity, so that sorting ascending
        always yields best-first order.
        """

    def distances(
        self,
        store: Any,
        payload: Any,
        ids: Sequence[int],
        tau: float | int | None,
    ) -> list[float]:
        """Rank scores for many objects; backends override to batch the work."""
        return [self.distance(store, payload, obj_id, tau) for obj_id in ids]

    def validate_tau(self, tau: float | int) -> None:
        """Reject thresholds that are meaningless for this domain.

        Called by the engine before serving and by the wire decoder before
        admitting a request, so a bad threshold fails with a clear message
        instead of an obscure error deep inside a searcher.  The default
        accepts anything :class:`repro.engine.api.Query` accepts (finite,
        non-NaN, non-negative); similarity domains override.
        """

    @abc.abstractmethod
    def tau_ladder(
        self,
        store: Any,
        payload: Any,
        start: float | int | None,
        max_size: int | None = None,
    ) -> Iterable[float | int]:
        """Escalating thresholds for top-k search, selective to permissive.

        The final rung should be exhaustive -- running it with the ``linear``
        algorithm returns every object comparable to the payload -- except
        where the domain's distance makes that intractable (exact GED is
        exponential in the threshold; the graphs backend caps the ladder and
        serves best-effort top-k within that radius).

        ``max_size`` is the largest :meth:`record_size` among the objects the
        ladder must be exhaustive over.  The engine passes the *live* maximum
        (main minus tombstones, plus delta) so that a mutated index walks
        exactly the ladder a from-scratch rebuild of the surviving records
        would walk; ``None`` means "compute it from the store" (every object
        in the main store is live).
        """

    # -- wire format -------------------------------------------------------

    def payload_to_wire(self, payload: Any) -> Any:
        """A JSON-serialisable form of a query payload for the HTTP API.

        The default is the identity, which suits domains whose payloads are
        already JSON-native (token-id lists, strings).  Backends with richer
        payloads (numpy vectors, graphs) override both directions.
        """
        return payload

    def payload_from_wire(self, data: Any) -> Any:
        """Rebuild a query payload from its :meth:`payload_to_wire` form."""
        return data

    # -- sharding ----------------------------------------------------------

    def store_size(self, store: Any) -> int:
        """Number of data objects in the store (the id space is ``range(n)``)."""
        return int(self.describe(store)["num_objects"])

    def shard_store(self, store: Any, lo: int, hi: int) -> Any:
        """A raw dataset holding objects ``[lo, hi)`` with local ids ``0..hi-lo``.

        The slice preserves the store's construction parameters (partition
        count, token classes, q-gram length, ...) so that ``prepare`` on the
        slice builds a shard equivalent to a fraction of the original.  Used
        by :mod:`repro.engine.sharding` to split one dataset into id-range
        shards; global ids are recovered as ``local_id + lo``.
        """
        raise NotImplementedError(f"backend {self.name!r} does not support id-range sharding")

    # -- mutation ----------------------------------------------------------

    #: Whether the backend implements the mutation protocol below
    #: (``delta_store`` / ``apply_mutations`` and the record primitives they
    #: rest on).  The engine refuses ``upsert``/``delete`` on backends that
    #: leave this False.
    mutable: bool = False

    #: Whether :meth:`tau_ladder` actually depends on ``max_size``.  When
    #: False (Hamming: the ladder depends only on the shared dimension) the
    #: engine skips the O(live records) size scan before every top-k query
    #: on a mutated store.
    ladder_uses_max_size: bool = True

    def delta_store(self, store: Any) -> Any:
        """A fresh (identity) delta/tombstone overlay for a prepared store."""
        from repro.engine.mutation import DeltaStore

        if not self.mutable:
            raise NotImplementedError(
                f"backend {self.name!r} does not support online mutation"
            )
        return DeltaStore.fresh(self.store_size(store))

    def apply_mutations(self, store: Any, delta: Any) -> tuple[Any, Any]:
        """Fold an overlay into a rebuilt main store (compaction).

        Returns the rebuilt, prepared store plus the overlay of the rebuilt
        store (empty delta and tombstones; the external-id mapping and
        ``next_id`` survive, so ids stay stable across compactions).
        """
        if not self.mutable:
            raise NotImplementedError(
                f"backend {self.name!r} does not support online mutation"
            )
        live_ids, records = delta.live_records(self.store_records(store))
        if not records:
            raise ValueError(
                f"compacting would leave backend {self.name!r} with zero live "
                f"records; the domain datasets cannot be empty"
            )
        rebuilt = self.prepare(self.make_dataset(store, records))
        return rebuilt, delta.compacted(live_ids)

    def store_records(self, store: Any) -> Sequence[Any]:
        """The raw records of a store, indexed by main position."""
        raise NotImplementedError(f"backend {self.name!r} does not expose raw records")

    def make_dataset(self, store: Any, records: Sequence[Any]) -> Any:
        """A raw dataset over ``records`` preserving the store's parameters.

        Like :meth:`shard_store`, but from an explicit record list; used by
        compaction to rebuild the main store from the surviving records.
        """
        raise NotImplementedError(f"backend {self.name!r} cannot rebuild from records")

    def check_record(self, store: Any, record: Any) -> Any:
        """Validate (and normalise) a record before it enters the delta.

        Raises ``ValueError`` for records the store could never hold (wrong
        vector dimension, wrong type); upsert fails fast instead of poisoning
        every later search.
        """
        return record

    def record_size(self, store: Any, record: Any) -> int:
        """The :meth:`tau_ladder` size measure of one raw record."""
        return 1

    def record_distance(
        self, store: Any, payload: Any, record: Any, tau: float | int | None
    ) -> float:
        """Exact rank score between a payload and a raw record (lower wins).

        The delta-store counterpart of :meth:`distance`: the record is not in
        the main store, so it is scored directly.  Must agree, bit for bit,
        with what :meth:`distance` would return once the record is folded
        into the main store -- the mutation tests assert exactly that.
        """
        raise NotImplementedError(f"backend {self.name!r} cannot score raw records")

    def record_distances(
        self, store: Any, payload: Any, records: Sequence[Any], tau: float | int | None
    ) -> list[float]:
        """Rank scores for many raw records; backends override to batch.

        The delta-store counterpart of :meth:`distances`: the engine scores
        a mutated index's whole delta in one call, so backends can run their
        vectorised kernels instead of a per-record Python loop.  Must agree
        element-wise with :meth:`record_distance`.
        """
        return [self.record_distance(store, payload, record, tau) for record in records]

    def score_matches(self, score: float, tau: float | int) -> bool:
        """Whether a :meth:`record_distance` score satisfies threshold ``tau``.

        Distance domains match when ``score <= tau``; similarity domains
        (which negate their similarity into the score) override.
        """
        return score <= tau

    def scan_records(
        self, store: Any, payload: Any, records: Sequence[Any], tau: float | int
    ) -> list[bool]:
        """Which raw records satisfy threshold ``tau`` against ``payload``.

        The engine's delta-store scan: like ``score_matches`` over
        :meth:`record_distances`, but backends may override with a cheaper
        predicate-only kernel (e.g. the banded edit-distance check, which
        never computes distances beyond ``tau``).  Must agree with
        ``score_matches(record_distance(...), tau)`` on every record.
        """
        return [
            self.score_matches(score, tau)
            for score in self.record_distances(store, payload, records, tau)
        ]

    def record_to_wire(self, record: Any) -> Any:
        """JSON form of a data record; defaults to the payload codec."""
        return self.payload_to_wire(record)

    def record_from_wire(self, data: Any) -> Any:
        """Rebuild a data record from :meth:`record_to_wire` output."""
        return self.payload_from_wire(data)

    # -- persistence -------------------------------------------------------

    @abc.abstractmethod
    def save_store(self, store: Any, directory: str) -> None:
        """Write the store (dataset + any prebuilt index) into ``directory``."""

    @abc.abstractmethod
    def load_store(self, directory: str) -> Any:
        """Restore a store written by :meth:`save_store`."""

    @abc.abstractmethod
    def save_queries(self, queries: Sequence[Any], directory: str) -> None:
        """Persist a sample query workload next to the store."""

    @abc.abstractmethod
    def load_queries(self, directory: str) -> list[Any] | None:
        """Load the persisted workload, or ``None`` when absent."""

    # -- synthetic workloads (CLI) ----------------------------------------

    @abc.abstractmethod
    def make_workload(self, size: int, num_queries: int, seed: int) -> tuple[Any, list[Any]]:
        """A synthetic ``(raw dataset, query payloads)`` pair for the CLI."""

    # -- shared helpers ----------------------------------------------------

    def check_algorithm(self, algorithm: str) -> None:
        if algorithm not in self.algorithms:
            raise ValueError(
                f"backend {self.name!r} does not implement algorithm "
                f"{algorithm!r}; choose one of {sorted(self.algorithms)}"
            )


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register a backend instance under its ``name``."""
    if not backend.name:
        raise ValueError("backends must define a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look a backend up by name, with a helpful error for typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown backend {name!r}; registered backends: {known}") from None


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)
