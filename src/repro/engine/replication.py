"""Per-shard replication: N single-worker replicas sharing one WAL lineage.

:class:`repro.engine.sharding.ShardedEngine` historically ran exactly one
worker process per shard, so a SIGKILL'd worker was a 503 until someone
called ``respawn_shard()`` by hand, and ``compact()`` blocked the write path
for the whole rebuild.  This module supplies the fault-tolerance layer that
turns each shard into a *replica set*:

* **One WAL lineage per shard, owned by the parent.**  The parent process
  opens the shard's :class:`repro.engine.wal.WriteAheadLog` and is the only
  writer; replicas never attach it.  A write is fanned out to every live
  replica first and appended to the log only after at least one replica
  applied it (*apply-then-log*) -- so the log never acknowledges history
  that no replica holds, and the crash contract (acked ``<= recovered <=
  acked + 1`` batches) is unchanged from the single-worker design.
* **Replicas are replay-only readers.**  A worker boots by loading the
  shard container and folding in the WAL suffix past the container
  checkpoint (:meth:`SearchEngine.replay_wal`); afterwards the parent ships
  mutations as explicit sub-batches stamped with the lineage sequence
  number they cover.
* **Reads route to the least-loaded live replica** and fail over
  transparently: a replica that dies mid-call is marked dead and the call
  is retried on a sibling (:class:`RoutedFuture`).  Read-your-writes is a
  routing constraint -- callers pass the ``wal_seq`` their session has been
  acknowledged at, and replicas still catching up past it are skipped.
* **Respawn + readmission**: a dead replica is rebuilt from its container,
  replays the shared WAL until it has caught up with ``wal.last_seq``, and
  is readmitted under the write lock so no acknowledged write can slip
  between catch-up and readmission.
* **Rolling compaction**: with two or more replicas the set compacts one
  *drained* replica at a time while the siblings keep serving, then
  readmits it through WAL replay.  The write path never blocks beyond the
  readmission's atomic section.

Lock order (a :mod:`repro.analysis` lock-discipline invariant): a thread
may take ``ReplicaSet._write_lock`` -> ``ReplicaSet._lock`` ->
``WriteAheadLog._lock``, never the reverse.

Everything module-level and underscore-prefixed below the "Worker side"
marker runs *inside* the worker processes (module-level so the functions
pickle across the process boundary).
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.common import diag
from repro.engine.api import Query
from repro.engine.backend import get_backend
from repro.engine.wal import DURABILITY_LEVELS, WriteAheadLog, op_to_wire

#: Replica lifecycle states, in the order a healthy respawn walks them.
LIVE = "live"
DEAD = "dead"
RESPAWNING = "respawning"
CATCHING_UP = "catching-up"
DRAINING = "draining"

REPLICA_STATES = (LIVE, DEAD, RESPAWNING, CATCHING_UP, DRAINING)


class ShardWorkerError(RuntimeError):
    """A shard has no replica able to answer (all workers died mid-call).

    Carries the failing ``shard_id`` so callers -- the network serving layer
    maps this to a 503 -- can report which partition of the id space is down
    rather than surfacing a bare :class:`BrokenProcessPool`.
    """

    def __init__(self, shard_id: int, message: str):
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id


# ---------------------------------------------------------------------------
# Worker side (module level so the functions pickle across processes)
# ---------------------------------------------------------------------------

_WORKER: dict[str, Any] = {}


def _init_worker(
    shard_dir: str,
    offset: int,
    cache_size: int,
    wal_path: str | None = None,
) -> None:
    """Load one shard container into a worker-private engine, once.

    With ``wal_path`` set, the shard's shared write-ahead log is **replayed
    into the overlay** -- never attached -- before the readiness barrier
    releases.  The parent owns the log and appends on behalf of every
    replica; workers only ever read it, which is what lets N replicas share
    one lineage file.
    """
    from repro.engine.executor import SearchEngine

    engine = SearchEngine(cache_size=cache_size)
    container = engine.load_index(shard_dir)
    backend_name = container.backend.name
    if wal_path is not None:
        engine.replay_wal(backend_name, wal_path)
    _WORKER["engine"] = engine
    _WORKER["offset"] = offset
    _WORKER["backend"] = backend_name


def _worker_ready() -> int:
    """Startup barrier: returns the shard offset once the shard is loaded."""
    return _WORKER["offset"]


def _worker_search(query: Query) -> dict:
    """Answer one query against the worker's shard; ids come back global."""
    engine = _WORKER["engine"]
    offset = _WORKER["offset"]
    response = engine.search(query)
    return {
        "ids": [int(obj_id) + offset for obj_id in response.ids],
        "scores": (
            None
            if response.scores is None
            else [float(score) for score in response.scores]
        ),
        "tau_effective": response.tau_effective,
        "num_candidates": response.num_candidates,
        "num_generated": response.num_generated,
        "candidate_time": response.candidate_time,
        "verify_time": response.verify_time,
        "engine_time": response.engine_time,
        # Span timeline recorded by the worker engine (None when the query
        # carried no trace id).  Offsets are relative to the worker's own
        # clock; the parent embeds them under its per-shard span.
        "trace": response.trace,
    }


def _worker_search_many(queries: Sequence[Query]) -> list[dict]:
    """Answer a chunk of queries in one task, amortising the IPC cost."""
    return [_worker_search(query) for query in queries]


def _worker_stats() -> dict:
    """Snapshot of the worker engine's own EngineStats."""
    return _WORKER["engine"].stats.snapshot()


def _worker_metrics() -> dict:
    """The worker engine's metrics registry as a wire dump (mergeable)."""
    return _WORKER["engine"].metrics_wire()


def _worker_apply(ops: Sequence[dict], seq: int | None) -> dict:
    """Apply one parent-routed sub-batch and record the lineage seq it covers.

    The worker holds no WAL (the parent owns the lineage), so the engine
    applies at memory durability; the parent provides durability by
    appending the batch to the shared log after at least one replica
    succeeded.
    """
    engine = _WORKER["engine"]
    outcome = engine.mutate(_WORKER["backend"], list(ops), None)
    if seq is not None:
        engine.advance_applied_seq(_WORKER["backend"], seq)
    return outcome


def _worker_applied_seq() -> int:
    """The lineage sequence number this worker's state covers."""
    return int(_WORKER["engine"].applied_seq(_WORKER["backend"]))


def _worker_replay_from(wal_path: str) -> dict:
    """Fold the shared WAL's unapplied suffix into the overlay (catch-up)."""
    return _WORKER["engine"].replay_wal(_WORKER["backend"], wal_path)


def _worker_compact_and_save(shard_dir: str | None) -> dict:
    """Fold the overlay into a rebuilt index; optionally checkpoint it.

    With ``shard_dir`` set and a real rebuild done, the compacted store is
    persisted back into the shard container so the parent may truncate the
    shared WAL up to ``checkpoint_seq``.  An identity compaction (or an
    emptied store) checkpoints nothing -- there is nothing the WAL suffix is
    needed to reconstruct that the container does not already hold.
    """
    engine = _WORKER["engine"]
    backend = _WORKER["backend"]
    try:
        summary = dict(engine.compact(backend))
    except ValueError as exc:
        # Every record of this shard is deleted; the overlay stays (searches
        # keep answering correctly through the tombstones).
        return {"backend": backend, "compacted": False, "error": str(exc)}
    if shard_dir is not None and summary.get("compacted", True):
        engine.save_index(backend, shard_dir)
        summary["checkpointed"] = True
        summary["checkpoint_seq"] = engine.applied_seq(backend)
    return summary


def _worker_durability_info() -> dict:
    return _WORKER["engine"].durability_info(_WORKER["backend"])


def _worker_wait_for_compaction(timeout: float | None = None) -> bool:
    return _WORKER["engine"].wait_for_compaction(_WORKER["backend"], timeout)


def _worker_mutation_info() -> dict:
    return _WORKER["engine"].mutation_info(_WORKER["backend"])


def _worker_flush(shard_dir: str) -> dict:
    """Persist the worker's store (and overlay) back into its container."""
    return _WORKER["engine"].save_index(_WORKER["backend"], shard_dir)


def _worker_start_profiler(hz: float) -> None:
    """Arm (or re-arm) this worker's continuous sampling profiler.

    The profiler lives in the worker global and keeps sampling between
    queries, so :func:`_worker_profile_wire` answers instantly -- an
    on-demand profiling window would block the shard's single worker and
    stall every in-flight query behind it.
    """
    profiler = _WORKER.get("profiler")
    if profiler is None:
        profiler = diag.SamplingProfiler(hz=hz, main_role="shard-worker")
        _WORKER["profiler"] = profiler
    profiler.start()


def _worker_stop_profiler() -> None:
    profiler = _WORKER.pop("profiler", None)
    if profiler is not None:
        profiler.stop()


def _worker_profile_wire() -> dict | None:
    """Snapshot of the worker's profiler, or None when profiling is off."""
    profiler = _WORKER.get("profiler")
    return profiler.snapshot() if profiler is not None else None


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class Replica:
    """One replica slot of a shard: a single-worker pool plus routing state.

    All mutable fields are guarded by the owning :class:`ReplicaSet`'s
    ``_lock``; the object itself holds no lock so it can live in
    ``__slots__``-sized numbers.
    """

    __slots__ = ("index", "pool", "state", "applied_seq", "in_flight", "generation")

    def __init__(self, index: int):
        self.index = index
        self.pool: ProcessPoolExecutor | None = None
        self.state = RESPAWNING
        self.applied_seq = 0
        self.in_flight = 0
        self.generation = 0

    def pid(self) -> int | None:
        """The worker process id, or None before the process exists."""
        try:
            return next(iter(self.pool._processes))
        except (StopIteration, AttributeError, TypeError):
            return None

    def process_alive(self) -> bool:
        """Whether the pool's worker process is actually running.

        A SIGKILL'd worker leaves the pool object intact but its process
        dead; the pool only notices on the next task, so liveness checks
        must ask the OS, not the executor.
        """
        try:
            processes = list(self.pool._processes.values())
        except (AttributeError, TypeError):
            return False
        if not processes:
            return False
        return all(process.is_alive() for process in processes)


class RoutedFuture:
    """A read routed to one live replica, retried on siblings if it dies.

    Submission picks the least-loaded live replica satisfying the caller's
    ``min_seq`` (read-your-writes) constraint; if the replica's process dies
    before the result lands, the call is resubmitted to a sibling.  Only
    when *no* live replica remains does :meth:`result` raise
    :class:`ShardWorkerError` -- a replica death is invisible to the caller
    while any sibling lives.
    """

    __slots__ = ("_rset", "_fn", "_args", "_min_seq", "_replica", "_future")

    def __init__(self, rset: "ReplicaSet", fn: Callable, args: tuple, min_seq: int = 0):
        self._rset = rset
        self._fn = fn
        self._args = args
        self._min_seq = min_seq
        self._replica: Replica | None = None
        self._future: Future | None = None
        self._submit()

    def _submit(self) -> None:
        while True:
            replica = self._rset._pick(self._min_seq)
            try:
                future = replica.pool.submit(self._fn, *self._args)
            except (BrokenProcessPool, RuntimeError):
                self._rset._release(replica)
                self._rset._mark_dead(replica)
                continue
            self._replica = replica
            self._future = future
            future.add_done_callback(lambda _f, r=replica: self._rset._release(r))
            return

    def result(self, timeout: float | None = None) -> Any:
        while True:
            try:
                return self._future.result(timeout)
            except (BrokenProcessPool, CancelledError):
                self._rset._mark_dead(self._replica)
                self._rset._note_failover()
                self._submit()


class ReplicaSet:
    """N replicas of one shard behind a single write path and WAL lineage.

    Args:
        shard_id: the shard this set serves (only used in error messages
            and summaries).
        spawn: zero-argument factory returning a fresh single-worker
            ``ProcessPoolExecutor`` whose initializer loads the shard.
        num_replicas: replica count; ``> 1`` requires ``wal`` (siblings can
            only converge through a shared lineage).
        wal: the parent-owned :class:`WriteAheadLog`, or None for the
            WAL-less single-replica mode (in-memory mutations only).
        backend: backend name, needed to encode WAL records.
        on_death: callback fired (outside all locks) each time a replica
            transitions to ``dead`` -- the engine counts worker errors and
            marks the health scoreboard here.
        on_failover: callback fired when a read is transparently retried on
            a sibling after its first replica died mid-call.
    """

    def __init__(
        self,
        shard_id: int,
        spawn: Callable[[], ProcessPoolExecutor],
        num_replicas: int = 1,
        wal: WriteAheadLog | None = None,
        backend: str | None = None,
        on_death: Callable[[], None] | None = None,
        on_failover: Callable[[], None] | None = None,
    ):
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        if num_replicas > 1 and wal is None:
            raise ValueError(
                "replicas > 1 requires a shared WAL lineage (pass wal_dir)"
            )
        self.shard_id = shard_id
        self._spawn = spawn
        self._wal = wal
        self._backend = backend
        self._backend_obj = get_backend(backend) if backend is not None else None
        self._on_death = on_death
        self._on_failover = on_failover
        # _lock guards the replica table (states, applied seqs, in-flight
        # counts) and the _compacting flag; _write_lock serialises the
        # write path with readmissions so no acknowledged write can slip
        # past a replica between its catch-up and its readmission.
        self._lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._compacting = False
        self.replicas = [Replica(index) for index in range(num_replicas)]
        self._ready: list[tuple[Replica, Future, Future]] = []

    # -- lifecycle ---------------------------------------------------------

    def spawn(self) -> None:
        """Start every replica's pool and queue its readiness barrier.

        Returns immediately; :meth:`await_ready` collects the barriers, so
        a multi-shard engine can overlap the (container-loading) startup of
        all its workers.
        """
        self._ready = []
        for replica in self.replicas:
            replica.pool = self._spawn()
            self._ready.append(
                (
                    replica,
                    replica.pool.submit(_worker_ready),
                    replica.pool.submit(_worker_applied_seq),
                )
            )

    def await_ready(self) -> None:
        """Block until every replica has loaded its shard and replayed."""
        ready, self._ready = self._ready, []
        for replica, barrier, applied in ready:
            barrier.result()
            seq = int(applied.result())
            with self._lock:
                replica.applied_seq = seq
                replica.state = LIVE
        if self._wal is not None:
            # Replay may cover history the (truncated) log file no longer
            # holds; restore the lineage numbering from the replicas' view.
            with self._lock:
                top = max(
                    (r.applied_seq for r in self.replicas if r.state == LIVE),
                    default=0,
                )
            self._wal.resume_from(top)

    def close(self) -> None:
        with self._lock:
            pools = [r.pool for r in self.replicas if r.pool is not None]
            for replica in self.replicas:
                replica.state = DEAD
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- routing -----------------------------------------------------------

    def _pick(self, min_seq: int = 0) -> Replica:
        """The least-loaded live replica whose state covers ``min_seq``.

        When no live replica has caught up with the caller's session token
        the most-caught-up one is used (best effort beats a refusal: the
        token names acknowledged history, and the fallback replica is the
        closest any live replica gets to it).
        """
        with self._lock:
            live = [r for r in self.replicas if r.state == LIVE]
            if not live:
                raise ShardWorkerError(
                    self.shard_id,
                    f"no live replica ({len(self.replicas)} configured, all down)",
                )
            caught_up = [r for r in live if r.applied_seq >= min_seq]
            candidates = caught_up or [max(live, key=lambda r: r.applied_seq)]
            replica = min(candidates, key=lambda r: r.in_flight)
            replica.in_flight += 1
            return replica

    def _release(self, replica: Replica) -> None:
        with self._lock:
            if replica.in_flight > 0:
                replica.in_flight -= 1

    def _mark_dead(self, replica: Replica) -> None:
        with self._lock:
            if replica.state == DEAD:
                return
            replica.state = DEAD
        if self._on_death is not None:
            self._on_death()

    def _note_failover(self) -> None:
        if self._on_failover is not None:
            self._on_failover()

    def submit(self, fn: Callable, *args: Any, min_seq: int = 0) -> RoutedFuture:
        """Route one read to a live replica; raises ShardWorkerError when
        the set has none left."""
        return RoutedFuture(self, fn, args, min_seq)

    def broadcast(
        self, fn: Callable, *args: Any, ignore_errors: bool = True
    ) -> list[Any]:
        """Run a task on every live replica, collecting the results."""
        with self._lock:
            targets = [r for r in self.replicas if r.state == LIVE]
        results: list[Any] = []
        for replica in targets:
            try:
                results.append(replica.pool.submit(fn, *args).result())
            except (BrokenProcessPool, CancelledError, RuntimeError) as exc:
                self._mark_dead(replica)
                if not ignore_errors:
                    raise ShardWorkerError(
                        self.shard_id, f"replica {replica.index} died ({exc})"
                    ) from exc
        return results

    # -- write path --------------------------------------------------------

    def apply(self, local_ops: Sequence[dict], durability: str | None = None) -> dict:
        """Apply one sub-batch to every live replica, then log it.

        Apply-then-log: the batch is fanned out to the live replicas first
        and appended to the shared WAL only after at least one applied it,
        so the log never acknowledges history no replica holds.  A replica
        that dies mid-write is marked dead (the supervisor will respawn and
        re-converge it through the log); the write succeeds while any
        replica lives.  Deterministic validation failures (the engine
        rejects the batch before touching state) are re-raised unlogged.
        """
        level = (
            durability
            if durability is not None
            else ("wal" if self._wal is not None else "memory")
        )
        if level not in DURABILITY_LEVELS:
            expected = ", ".join(DURABILITY_LEVELS)
            raise ValueError(f"unknown durability level {level!r} (expected {expected})")
        if level == "wal" and self._wal is None:
            raise ValueError(
                "durability level 'wal' requires a write-ahead log (pass wal_dir)"
            )
        local_ops = list(local_ops)
        wire_ops: list[dict] | None = None
        if self._wal is not None:
            # Encode before fan-out: an unencodable record must fail the
            # batch before any replica applies it.
            try:
                wire_ops = [op_to_wire(self._backend_obj, op) for op in local_ops]
            except ValueError:
                raise
            except Exception as exc:
                raise ValueError(f"unencodable mutation record: {exc}") from exc
        with self._write_lock:
            seq = self._wal.last_seq + 1 if self._wal is not None else None
            with self._lock:
                targets = [r for r in self.replicas if r.state == LIVE]
            if not targets:
                raise ShardWorkerError(self.shard_id, "no live replica to accept writes")
            submitted: list[tuple[Replica, Future]] = []
            for replica in targets:
                try:
                    submitted.append(
                        (replica, replica.pool.submit(_worker_apply, local_ops, seq))
                    )
                except (BrokenProcessPool, RuntimeError):
                    self._mark_dead(replica)
            outcome: dict | None = None
            invalid: ValueError | None = None
            applied: list[Replica] = []
            for replica, future in submitted:
                try:
                    result = future.result()
                except (BrokenProcessPool, CancelledError):
                    self._mark_dead(replica)
                    continue
                except ValueError as exc:
                    # The engine validates the whole batch before touching
                    # state, deterministically -- every sibling rejects too.
                    invalid = exc
                    continue
                outcome = result
                applied.append(replica)
                if seq is not None:
                    with self._lock:
                        replica.applied_seq = max(replica.applied_seq, seq)
            if invalid is not None:
                # A replica that applied a batch its siblings rejected has
                # diverged from the lineage; force it back through replay.
                for replica in applied:
                    self._mark_dead(replica)
                raise invalid
            if outcome is None:
                raise ShardWorkerError(self.shard_id, "every replica died mid-write")
            if self._wal is not None:
                appended = self._wal.append(
                    self._backend, wire_ops, sync=(level == "wal")
                )
                if appended != seq:
                    raise RuntimeError(
                        f"WAL lineage corrupted: assigned seq {seq} but the "
                        f"log appended at {appended}"
                    )
        return {"results": outcome["results"], "durability": level, "wal_seq": seq}

    # -- respawn / readmission ---------------------------------------------

    def respawn(self, replica: Replica, wal_path: str | None) -> Replica:
        """Replace one replica's worker process and re-converge its state.

        The fresh worker reloads the shard container, replays the shared
        WAL past its checkpoint, and is readmitted (state ``live``) only
        once its ``applied_seq`` has caught up with the lineage.
        """
        with self._lock:
            replica.state = RESPAWNING
        old = replica.pool
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        pool = self._spawn()
        with self._lock:
            replica.pool = pool
            replica.generation += 1
        try:
            pool.submit(_worker_ready).result()
            seq = int(pool.submit(_worker_applied_seq).result())
        except (BrokenProcessPool, RuntimeError) as exc:
            self._mark_dead(replica)
            raise ShardWorkerError(
                self.shard_id, f"replica {replica.index} failed to respawn ({exc})"
            ) from exc
        with self._lock:
            replica.applied_seq = seq
            replica.state = CATCHING_UP
        return self._readmit(replica, wal_path)

    def _readmit(self, replica: Replica, wal_path: str | None, max_rounds: int = 64) -> Replica:
        """Catch a replica up with the WAL lineage, then mark it live.

        Catch-up replays happen off the write lock (writes keep flowing);
        only the final replay -- bounded by whatever the last unlocked
        round left over -- holds ``_write_lock``, so the replica rejoins
        with *exactly* the lineage state and no write can land in between.
        """
        try:
            if wal_path is not None and self._wal is not None:
                applied = int(replica.pool.submit(_worker_applied_seq).result())
                rounds = 0
                while applied < self._wal.last_seq and rounds < max_rounds:
                    result = replica.pool.submit(_worker_replay_from, wal_path).result()
                    applied = int(result["applied_seq"])
                    rounds += 1
                with self._write_lock:
                    result = replica.pool.submit(_worker_replay_from, wal_path).result()
                    with self._lock:
                        replica.applied_seq = int(result["applied_seq"])
                        replica.state = LIVE
            else:
                with self._lock:
                    replica.state = LIVE
        except (BrokenProcessPool, CancelledError, RuntimeError) as exc:
            self._mark_dead(replica)
            raise ShardWorkerError(
                self.shard_id,
                f"replica {replica.index} died during readmission ({exc})",
            ) from exc
        return replica

    def heal(self, wal_path: str | None) -> list[Replica]:
        """Respawn every dead replica (the supervisor's per-tick sweep).

        Also notices replicas whose process was killed but whose pool has
        not yet observed the death (nothing was submitted since the kill).
        Returns the replicas brought back live, so the caller can re-arm
        per-worker state such as profilers.
        """
        healed: list[Replica] = []
        for replica in self.replicas:
            with self._lock:
                needs = replica.state == DEAD or (
                    replica.state == LIVE and not replica.process_alive()
                )
            if not needs:
                continue
            try:
                self.respawn(replica, wal_path)
            except ShardWorkerError:
                continue
            healed.append(replica)
        return healed

    # -- compaction --------------------------------------------------------

    @property
    def compacting(self) -> bool:
        with self._lock:
            return self._compacting

    def compact(self, persist_dir: str | None, wal_path: str | None) -> dict:
        """Compact the set's replicas; rolling when there are siblings.

        With one replica this is the classic in-place compaction.  With
        more, replicas are drained and compacted one at a time while the
        siblings keep serving reads *and writes* -- the write path never
        waits on a rebuild, only on the readmission's atomic section.  The
        first successfully compacted replica checkpoints its container into
        ``persist_dir`` (when given), after which the shared WAL is
        truncated up to the checkpoint.
        """
        with self._lock:
            if self._compacting:
                raise RuntimeError(
                    f"compaction already in progress for shard {self.shard_id}"
                )
            self._compacting = True
        try:
            return self._compact_impl(persist_dir, wal_path)
        finally:
            with self._lock:
                self._compacting = False

    def _compact_impl(self, persist_dir: str | None, wal_path: str | None) -> dict:
        with self._lock:
            targets = [r for r in self.replicas if r.state == LIVE]
        if not targets:
            raise ShardWorkerError(self.shard_id, "no live replica to compact")
        rolling = len(self.replicas) > 1
        summary: dict | None = None
        checkpoint_seq: int | None = None
        compacted = 0
        for replica in targets:
            drained = False
            if rolling:
                with self._lock:
                    if replica.state != LIVE:
                        continue
                    if any(r is not replica and r.state == LIVE for r in self.replicas):
                        # The pool is single-worker, so queued reads drain
                        # ahead of the compaction task; new reads skip this
                        # replica.
                        replica.state = DRAINING
                        drained = True
                    # Otherwise this is the only live replica (a sibling
                    # died or is still being respawned): compact it
                    # *undrained* so reads and writes keep landing -- they
                    # queue behind the rebuild instead of finding zero live
                    # replicas.  Degraded-mode latency beats unavailability.
            persist = persist_dir if summary is None else None
            try:
                result = replica.pool.submit(_worker_compact_and_save, persist).result()
            except (BrokenProcessPool, CancelledError, RuntimeError):
                self._mark_dead(replica)
                continue
            if result.get("checkpointed"):
                checkpoint_seq = int(result["checkpoint_seq"])
            if summary is None:
                summary = dict(result)
            compacted += 1
            if drained:
                try:
                    self._readmit(replica, wal_path)
                except ShardWorkerError:
                    continue
        if summary is None:
            raise ShardWorkerError(
                self.shard_id, "every replica died during compaction"
            )
        if self._wal is not None and checkpoint_seq:
            self._wal.truncate_upto(checkpoint_seq)
        summary["rolling"] = rolling
        summary["replicas_compacted"] = compacted
        return summary

    # -- introspection -----------------------------------------------------

    def status(self) -> list[dict]:
        """Per-replica state for ``/stats`` and ``shard_health()``.

        A replica whose process was killed but not yet noticed by its pool
        is reported ``dead`` (the supervisor will get to it); the internal
        state is left for the supervisor to transition.
        """
        entries: list[dict] = []
        with self._lock:
            for replica in self.replicas:
                state = replica.state
                if state == LIVE and not replica.process_alive():
                    state = DEAD
                entries.append(
                    {
                        "replica": replica.index,
                        "state": state,
                        "pid": replica.pid(),
                        "applied_seq": replica.applied_seq,
                        "in_flight": replica.in_flight,
                        "generation": replica.generation,
                    }
                )
        return entries
