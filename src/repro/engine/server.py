"""Async network serving: a stdlib-only HTTP/1.1 JSON front-end.

:class:`EngineServer` puts a network surface on anything that serves
``search`` / ``search_batch`` -- an in-process
:class:`repro.engine.executor.SearchEngine` or a multi-process
:class:`repro.engine.sharding.ShardedEngine` -- so the repo's thresholded
similarity machinery is reachable by concurrent clients without importing
the package:

* **micro-batch coalescing**: concurrent in-flight queries are collected by
  a single batcher task and executed as one ``search_batch`` call.  The
  batch window is bounded by ``max_batch_size`` queries and ``max_wait_ms``
  milliseconds; batches run on a one-thread executor, so while one batch
  executes the next one accumulates -- under load the effective batch size
  grows and the per-request overhead is amortised exactly like the sharded
  engine's chunk pipelining.
* **admission control and backpressure**: at most ``max_pending`` queries
  may be in flight; excess requests are rejected immediately with HTTP 429
  and a ``Retry-After`` hint instead of growing an unbounded queue.
* **schema-versioned JSON endpoints** (:mod:`repro.engine.wire`):
  ``POST /search`` (thresholded selection), ``POST /search/topk`` (top-k),
  ``POST /mutate`` (batched upserts/deletes with explicit durability),
  ``POST /upsert`` / ``POST /delete`` / ``POST /compact`` (one-op online
  index mutation), ``GET /healthz``, ``GET /stats`` and ``GET /manifest``.
* **write serialisation**: mutations run on the same one-thread executor
  as the search batches, so a write is atomic with respect to every
  batch -- no query observes a half-applied mutation -- and admission
  control covers writes exactly like reads.  With a WAL attached to the
  engine, a mutation response is written only after the engine's
  append-and-fsync returns: an acknowledged batch is on disk.
* **graceful drain**: :meth:`EngineServer.stop` stops accepting work,
  answers everything already admitted, then shuts the batcher down; a
  killed shard worker surfaces as 503 on the affected queries without
  wedging the batcher.

The server is asyncio + stdlib only.  :class:`ServerThread` runs it on a
background thread with its own event loop for tests, examples and the
blocking :class:`repro.engine.client.EngineClient`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any

from repro.common import diag
from repro.common.obs import (
    BATCH_SIZE_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    new_trace_id,
)
from repro.engine.api import Query
from repro.engine.sharding import ShardedEngine, ShardWorkerError
from repro.engine.wire import (
    WIRE_SCHEMA_VERSION,
    WireFormatError,
    decode_compact,
    decode_delete,
    decode_mutate,
    decode_query,
    decode_upsert,
    encode_response,
    format_session,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request-line + single-header size cap handed to ``asyncio.start_server``.
_LINE_LIMIT = 64 * 1024
_MAX_HEADERS = 100

#: Known endpoint paths; anything else is bucketed under "other" in the
#: per-endpoint stats so a path scanner cannot grow the dict unboundedly.
_ENDPOINTS = (
    "/search",
    "/search/topk",
    "/mutate",
    "/upsert",
    "/delete",
    "/compact",
    "/healthz",
    "/stats",
    "/manifest",
    "/metrics",
    "/debug/traces",
    "/debug/profile",
    "/debug/slo",
)

#: Longest on-demand profiling window ``GET /debug/profile?seconds=N`` accepts.
_MAX_PROFILE_SECONDS = 30.0


@dataclass
class ServerConfig:
    """Tunables of one :class:`EngineServer`.

    Attributes:
        host / port: listen address; port 0 binds an ephemeral port
            (read the real one from :attr:`EngineServer.address`).
        max_batch_size: most queries coalesced into one ``search_batch``.
        max_wait_ms: longest a query waits for companions before its batch
            is flushed anyway; 0 flushes immediately (batching then comes
            only from queries arriving while a batch executes).
        max_pending: admission-control bound on in-flight queries (queued
            plus executing); excess requests get 429 + ``Retry-After``.
        retry_after_s: the ``Retry-After`` hint on 429/503 responses.
        max_body_bytes: largest accepted request body (413 above it).
        drain_timeout_s: longest :meth:`EngineServer.stop` waits for
            admitted queries before shutting the batcher down regardless.
        trace: record a span timeline for every search request (clients can
            also opt in per request with an ``X-Trace: 1`` header, or pin
            the id with ``X-Trace-Id``).
        slow_query_ms: when set, queries at or above this end-to-end latency
            are appended to the slow-query log (JSON lines; implies
            tracing so every slow entry carries its span timeline).
        slow_query_log: file path for the slow-query log; ``None`` keeps
            slow entries only in the in-memory ring.
        slow_query_max_mb: size-rotate the slow-query log file once it
            reaches this many megabytes; ``None`` never rotates.
        slow_query_keep_files: rotated slow-query files retained.
        trace_buffer: capacity of the recent-traces ring (``/debug/traces``).
        trace_budget: fraction of ordinary (fast, successful) traces kept in
            the ring; slow and error traces are always kept.  1.0 keeps
            everything, 0.01 keeps every 100th ordinary trace.
        profile_hz: when set, run the continuous sampling profiler at this
            rate for the server's lifetime (``GET /debug/profile`` then
            reads the running aggregate; without it the endpoint profiles
            on demand for ``?seconds=N``).
        slo_objective: target good-request fraction of the serving SLO
            (burn rates on ``/healthz`` and ``/debug/slo`` are relative to
            the ``1 - slo_objective`` error budget).
        slo_latency_ms: latency target of the SLO; a request slower than
            this counts against the error budget like a failed one.
            ``None`` tracks errors only.
        durability: default ack level for ``/mutate`` requests that do not
            ask for one (``"memory"`` or ``"wal"``); ``None`` defers to the
            engine's default (``"wal"`` whenever a WAL is attached).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    max_pending: int = 256
    retry_after_s: float = 1.0
    max_body_bytes: int = 8 * 1024 * 1024
    drain_timeout_s: float = 30.0
    trace: bool = False
    slow_query_ms: float | None = None
    slow_query_log: str | None = None
    slow_query_max_mb: float | None = None
    slow_query_keep_files: int = 3
    trace_buffer: int = 128
    trace_budget: float = 1.0
    profile_hz: float | None = None
    slo_objective: float = 0.99
    slo_latency_ms: float | None = None
    durability: str | None = None

    def __post_init__(self) -> None:
        if self.durability is not None and self.durability not in ("memory", "wal"):
            raise ValueError("durability must be 'memory', 'wal' or None")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise ValueError("slow_query_ms must be non-negative")
        if self.slow_query_max_mb is not None and self.slow_query_max_mb <= 0:
            raise ValueError("slow_query_max_mb must be positive")
        if self.slow_query_keep_files < 1:
            raise ValueError("slow_query_keep_files must be at least 1")
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be at least 1")
        if not 0.0 <= self.trace_budget <= 1.0:
            raise ValueError("trace_budget must be in [0, 1]")
        if self.profile_hz is not None and self.profile_hz <= 0:
            raise ValueError("profile_hz must be positive")
        if not 0.0 < self.slo_objective < 1.0:
            raise ValueError("slo_objective must be in (0, 1)")
        if self.slo_latency_ms is not None and self.slo_latency_ms <= 0:
            raise ValueError("slo_latency_ms must be positive")


class ServerStats:
    """Serving counters of one :class:`EngineServer`.

    Registry-backed: the attributes and :meth:`snapshot` are views over a
    :class:`repro.common.obs.MetricsRegistry`, the same one ``GET /metrics``
    renders, so the two surfaces can never disagree.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._queries = r.counter("server_queries_total", "search queries answered 200")
        self._batches = r.counter("server_batches_total", "coalesced micro-batches executed")
        self._batch_queries = r.counter(
            "server_batch_queries_total", "queries summed over executed batches"
        )
        self._batch_max = r.gauge("server_batch_size_max", "largest batch so far")
        self._batch_hist = r.histogram(
            "server_batch_size", "micro-batch size", buckets=BATCH_SIZE_BUCKETS
        )
        self._wait_hist = r.histogram(
            "server_coalesce_wait_seconds", "per-query wait for batch companions"
        )
        self._routes: set[str] = set()

    # -- write path (single-threaded: everything runs on the event loop) ----

    def observe_request(self, route: str) -> None:
        self._routes.add(route)
        self.registry.counter("http_requests_total", "requests by route", route=route).inc()

    def observe_response(self, route: str, status: int, seconds: float) -> None:
        self.registry.counter(
            "http_responses_total", "responses by route and status", route=route, code=str(status)
        ).inc()
        self.registry.histogram(
            "http_request_seconds", "request handling latency", route=route
        ).observe(seconds)

    def observe_batch(self, size: int) -> None:
        self._batches.inc()
        self._batch_queries.inc(size)
        self._batch_hist.observe(size)
        if size > self._batch_max.value:
            self._batch_max.set(size)

    def observe_wait(self, seconds: float) -> None:
        self._wait_hist.observe(seconds)

    def observe_query(self) -> None:
        self._queries.inc()

    def observe_rejected(self, reason: str) -> None:
        self.registry.counter(
            "server_rejected_total", "rejected requests by reason", reason=reason
        ).inc()

    def observe_suppressed(self, site: str) -> None:
        """Count an error deliberately tolerated to keep serving.

        The keep-serving catches (dead shard workers during a drain, a
        scrape racing a worker respawn) must stay visible to operators:
        a climbing ``server_suppressed_errors_total`` is the signal that
        a subsystem is failing behind an endpoint that still answers 200.
        """
        self.registry.counter(
            "server_suppressed_errors_total", "errors tolerated to keep serving", site=site
        ).inc()

    def observe_error(self, kind: str) -> None:
        self.registry.counter(
            "server_errors_total", "failed requests by kind", kind=kind
        ).inc()

    def observe_mutation(self, kind: str) -> None:
        self.registry.counter(
            "server_mutations_total", "applied mutations by kind", kind=kind
        ).inc()

    # -- read path -----------------------------------------------------------

    def _counter_value(self, name: str, **labels: str) -> float:
        instrument = self.registry.get(name, **labels)
        return instrument.value if instrument is not None else 0.0

    @property
    def num_requests(self) -> int:
        return int(
            sum(self._counter_value("http_requests_total", route=route) for route in self._routes)
        )

    @property
    def num_queries(self) -> int:
        return int(self._queries.value)

    @property
    def num_batches(self) -> int:
        return int(self._batches.value)

    @property
    def sum_batch_size(self) -> int:
        return int(self._batch_queries.value)

    @property
    def max_batch_size(self) -> int:
        return int(self._batch_max.value)

    @property
    def avg_batch_size(self) -> float:
        return self.sum_batch_size / self.num_batches if self.num_batches else 0.0

    @property
    def rejected_busy(self) -> int:
        return int(self._counter_value("server_rejected_total", reason="busy"))

    @property
    def rejected_invalid(self) -> int:
        return int(self._counter_value("server_rejected_total", reason="invalid"))

    @property
    def errors_unavailable(self) -> int:
        return int(self._counter_value("server_errors_total", kind="unavailable"))

    @property
    def errors_internal(self) -> int:
        return int(self._counter_value("server_errors_total", kind="internal"))

    @property
    def num_upserts(self) -> int:
        return int(self._counter_value("server_mutations_total", kind="upsert"))

    @property
    def num_deletes(self) -> int:
        return int(self._counter_value("server_mutations_total", kind="delete"))

    @property
    def num_compactions(self) -> int:
        return int(self._counter_value("server_mutations_total", kind="compact"))

    @property
    def per_endpoint(self) -> dict[str, int]:
        return {
            route: int(self._counter_value("http_requests_total", route=route))
            for route in sorted(self._routes)
        }

    def snapshot(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "num_queries": self.num_queries,
            "num_batches": self.num_batches,
            "avg_batch_size": self.avg_batch_size,
            "max_batch_size": self.max_batch_size,
            "rejected_busy": self.rejected_busy,
            "rejected_invalid": self.rejected_invalid,
            "errors_unavailable": self.errors_unavailable,
            "errors_internal": self.errors_internal,
            "num_upserts": self.num_upserts,
            "num_deletes": self.num_deletes,
            "num_compactions": self.num_compactions,
            "per_endpoint": self.per_endpoint,
        }


class EngineServer:
    """An asyncio HTTP/1.1 JSON server over one engine.

    Args:
        engine: a :class:`SearchEngine` or :class:`ShardedEngine` (anything
            with ``search_batch``); queries from every connection funnel
            into its ``search_batch`` through the micro-batcher.
        config: serving tunables; ``None`` uses the defaults.
        own_engine: close the engine (if it has ``close``) on :meth:`stop`.
    """

    def __init__(
        self,
        engine: Any,
        config: ServerConfig | None = None,
        own_engine: bool = False,
    ):
        self.engine = engine
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        # Tail-based retention: slow (>= slow_query_ms) and error traces are
        # always kept, ordinary traces ride the trace_budget sampler.
        self.traces = diag.TailSampler(
            capacity=self.config.trace_buffer,
            budget=self.config.trace_budget,
            slow_ms=self.config.slow_query_ms,
        )
        self.slow_log = (
            SlowQueryLog(
                self.config.slow_query_ms,
                self.config.slow_query_log,
                max_bytes=(
                    int(self.config.slow_query_max_mb * 1024 * 1024)
                    if self.config.slow_query_max_mb is not None
                    else None
                ),
                keep_files=self.config.slow_query_keep_files,
            )
            if self.config.slow_query_ms is not None
            else None
        )
        self.profiler = (
            diag.SamplingProfiler(hz=self.config.profile_hz)
            if self.config.profile_hz is not None
            else None
        )
        self.slo = diag.SloMonitor(
            objective=self.config.slo_objective,
            latency_ms=self.config.slo_latency_ms,
        )
        self._span_bridge = diag.SpanMetricsBridge(self.stats.registry)
        self._own_engine = own_engine
        # Queue entries carry their enqueue time (loop clock) so the batcher
        # can report each query's coalesce wait.
        self._queue: deque[tuple[Query, asyncio.Future, float]] = deque()
        self._arrival: asyncio.Event | None = None
        self._in_flight = 0
        # Requests being handled right now (parse -> dispatch -> response
        # written); the drain waits on this, not just on admitted queries,
        # so a response mid-write is never cut off by the shutdown.
        self._active_requests = 0
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._batcher_task: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        # One executor thread: batches run serially, so the engine needs no
        # extra thread safety, and the next batch coalesces while one runs.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="engine-batch"
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; available after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("the server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._arrival = asyncio.Event()
        self._batcher_task = loop.create_task(self._batcher())
        if self.profiler is not None:
            self.profiler.start()
            # A sharded engine profiles its worker processes too.
            start_worker_profilers = getattr(self.engine, "start_profiling", None)
            if start_worker_profilers is not None:
                start_worker_profilers(self.config.profile_hz)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port, limit=_LINE_LIMIT
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish admitted work, shut down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout_s
        while (self._in_flight or self._active_requests) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                pass
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self.profiler is not None:
            self.profiler.stop()
            stop_worker_profilers = getattr(self.engine, "stop_profiling", None)
            if stop_worker_profilers is not None:
                try:
                    stop_worker_profilers()
                except Exception:  # noqa: BLE001 - dead workers must not block the drain
                    self.stats.observe_suppressed("stop_worker_profilers")
        if self._own_engine and hasattr(self.engine, "close"):
            self.engine.close()

    # -- micro-batcher -----------------------------------------------------

    async def _batcher(self) -> None:
        """Coalesce queued queries into ``search_batch`` calls, forever.

        A batch opens when the first query arrives and closes when it holds
        ``max_batch_size`` queries or ``max_wait_ms`` has passed since it
        opened, whichever comes first.  Engine failures are delivered to the
        affected queries' futures; the batcher itself never dies.
        """
        loop = asyncio.get_running_loop()
        config = self.config
        while True:
            if not self._queue:
                self._arrival.clear()
                await self._arrival.wait()
            deadline = loop.time() + config.max_wait_ms / 1000.0
            while len(self._queue) < config.max_batch_size:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._arrival.clear()
                try:
                    await asyncio.wait_for(self._arrival.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), config.max_batch_size))
            ]
            if not batch:
                continue
            queries = [query for query, _future, _enqueued in batch]
            self.stats.observe_batch(len(batch))
            batch_start = loop.time()
            for _query, _future, enqueued in batch:
                self.stats.observe_wait(batch_start - enqueued)
            try:
                responses = await loop.run_in_executor(
                    self._executor, self._run_batch, queries
                )
            except Exception as exc:  # engine failure: fail the batch, live on
                for _query, future, _enqueued in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            exec_time = loop.time() - batch_start
            for (_query, future, enqueued), response in zip(batch, responses):
                if not future.done():
                    future.set_result(
                        (response, len(batch), batch_start - enqueued, exec_time)
                    )

    def _run_batch(self, queries: list[Query]) -> list:
        return self.engine.search_batch(queries)

    async def _admit(self, query: Query) -> tuple[Any, int, float, float]:
        """Queue one query for the batcher; returns ``(response, batch_size,
        coalesce_wait_s, batch_exec_s)``."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._queue.append((query, future, loop.time()))
        self._in_flight += 1
        self._arrival.set()
        try:
            return await future
        finally:
            self._in_flight -= 1

    # -- HTTP plumbing -----------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            method, path, params, headers, body = request
            self._active_requests += 1
            try:
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                route = path if path in _ENDPOINTS else "other"
                self.stats.observe_request(route)
                started = time.perf_counter()
                status, payload, extra = await self._dispatch(
                    method, path, params, headers, body
                )
                self.stats.observe_response(route, status, time.perf_counter() - started)
                await self._write_response(writer, status, payload, keep_alive, extra)
            finally:
                self._active_requests -= 1
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[str, str, dict, dict, bytes] | None:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            await self._write_response(
                writer, 400, {"error": "malformed request line"}, False, {}
            )
            return None
        method, raw_path, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            await self._write_response(writer, 400, {"error": "too many headers"}, False, {})
            return None
        if "transfer-encoding" in headers:
            # The parser only supports Content-Length bodies; accepting a
            # chunked body as length 0 would desync the whole connection.
            await self._write_response(
                writer, 400, {"error": "Transfer-Encoding is not supported"}, False, {}
            )
            return None
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            length = -1
        if length < 0:
            await self._write_response(
                writer, 400, {"error": f"bad Content-Length {length_text!r}"}, False, {}
            )
            return None
        if length > self.config.max_body_bytes:
            await self._write_response(
                writer,
                413,
                {"error": f"body of {length} bytes exceeds {self.config.max_body_bytes}"},
                False,
                {},
            )
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = raw_path.partition("?")
        params: dict[str, str] = {}
        for pair in query_string.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                params[key] = value
        return method, path, params, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        keep_alive: bool,
        extra_headers: dict[str, str],
    ) -> None:
        if isinstance(payload, str):
            # Prometheus text exposition (/metrics); everything else is JSON.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- endpoints ---------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        headers: dict[str, str],
        body: bytes,
    ) -> tuple[int, dict | str, dict[str, str]]:
        if path in ("/search", "/search/topk"):
            if method != "POST":
                return 405, {"error": f"{path} takes POST"}, {"Allow": "POST"}
            return await self._handle_search(path, headers, body)
        if path in ("/mutate", "/upsert", "/delete", "/compact"):
            if method != "POST":
                return 405, {"error": f"{path} takes POST"}, {"Allow": "POST"}
            return await self._handle_mutation(path, body)
        if method != "GET":
            return 405, {"error": f"{path} takes GET"}, {"Allow": "GET"}
        if path == "/healthz":
            health = self._healthz()
            # "failing" means some shard has zero live replicas: requests
            # against it cannot succeed, so load balancers should stop
            # sending traffic here.  "degraded" (reduced redundancy, every
            # shard still answers) stays 200: the node is serving.
            return (503 if health["status"] == "failing" else 200), health, {}
        if path == "/stats":
            return 200, self._stats_payload(), {}
        if path == "/manifest":
            return 200, self._manifest_payload(), {}
        if path == "/metrics":
            return 200, self._metrics_text(), {}
        if path == "/debug/traces":
            return 200, self._traces_payload(), {}
        if path == "/debug/profile":
            return await self._handle_profile(params)
        if path == "/debug/slo":
            return 200, self._slo_payload(), {}
        self.stats.observe_rejected("invalid")
        return 404, {"error": f"unknown path {path!r}"}, {}

    def _trace_id_for(self, headers: dict[str, str]) -> str | None:
        """Resolve this request's trace id (explicit, requested, or policy)."""
        explicit = headers.get("x-trace-id")
        if explicit:
            return explicit[:64]
        requested = headers.get("x-trace")
        if requested is not None and requested.strip().lower() not in ("", "0", "false", "no"):
            return new_trace_id()
        if self.config.trace or self.slow_log is not None:
            return new_trace_id()
        return None

    async def _handle_search(
        self, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        retry = {"Retry-After": f"{self.config.retry_after_s:g}"}
        if self._draining:
            self.stats.observe_error("unavailable")
            return 503, {"error": "the server is draining"}, retry
        if self._in_flight >= self.config.max_pending:
            self.stats.observe_rejected("busy")
            return (
                429,
                {"error": f"{self._in_flight} queries in flight (limit {self.config.max_pending})"},
                retry,
            )
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats.observe_rejected("invalid")
            return 400, {"error": f"request body is not valid JSON: {exc}"}, {}
        try:
            query = decode_query(parsed)
            if path == "/search/topk":
                if query.k is None:
                    raise WireFormatError("/search/topk requires 'k'")
            elif query.k is not None:
                raise WireFormatError(
                    "/search answers thresholded queries; use /search/topk for 'k'"
                )
        except WireFormatError as exc:
            self.stats.observe_rejected("invalid")
            return 400, {"error": str(exc)}, {}
        trace_id = self._trace_id_for(headers)
        if trace_id is not None:
            query = replace(query, trace_id=trace_id)
        # Read-your-writes: the session token rides an HTTP header (not the
        # query body) so cached/encoded queries stay token-free; a replicated
        # engine uses it to skip replicas behind the caller's own writes.
        session = headers.get("x-session-token")
        if session:
            query = replace(query, session=session[:1024])
        started = time.perf_counter()
        try:
            response, batch_size, wait_s, exec_s = await self._admit(query)
        except (ShardWorkerError, RuntimeError) as exc:
            # A dead shard worker or a closed engine: the query is lost but
            # the batcher keeps serving; clients may retry elsewhere/later.
            # The trace id rides along so the failure is correlatable.
            self.stats.observe_error("unavailable")
            self._observe_failure(query, trace_id, started, exc)
            payload = {"error": str(exc)}
            if trace_id is not None:
                payload["trace_id"] = trace_id
            return 503, payload, retry
        except (ValueError, KeyError) as exc:
            # Engine-level validation the wire decoder cannot see (backend
            # not attached, algorithm/backend mismatch against this index).
            self.stats.observe_rejected("invalid")
            return 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500, not a crash
            self.stats.observe_error("internal")
            self._observe_failure(query, trace_id, started, exc)
            payload = {"error": f"{type(exc).__name__}: {exc}"}
            if trace_id is not None:
                payload["trace_id"] = trace_id
            return 500, payload, {}
        e2e_ms = (time.perf_counter() - started) * 1000.0
        self.stats.observe_query()
        self.slo.observe(e2e_ms)
        payload = encode_response(response, batch_size)
        if trace_id is not None:
            trace_doc = self._request_trace(trace_id, response, wait_s, exec_s, e2e_ms)
            payload["trace"] = trace_doc
            self.traces.add(trace_doc, e2e_ms=e2e_ms)
            self._span_bridge.record(trace_doc, backend=query.backend)
            if self.slow_log is not None:
                self.slow_log.maybe_log(
                    e2e_ms,
                    {
                        "ts": time.time(),
                        "trace_id": trace_id,
                        "route": path,
                        "backend": query.backend,
                        "tau": query.tau,
                        "k": query.k,
                        "algorithm": query.algorithm,
                        "batch_size": batch_size,
                        "num_results": response.num_results,
                        "num_candidates": response.num_candidates,
                        "num_generated": response.num_generated,
                        "cached": response.cached,
                        "trace": trace_doc,
                    },
                )
        return 200, payload, {}

    def _request_trace(
        self, trace_id: str, response: Any, wait_s: float, exec_s: float, e2e_ms: float
    ) -> dict:
        """The request timeline: coalesce wait, then the batch execution with
        the engine's own span tree (which for a sharded engine holds the
        per-shard candidate/verify spans and the merge) embedded."""
        wait_ms = wait_s * 1000.0
        children = []
        engine_trace = getattr(response, "trace", None)
        if engine_trace:
            children.append(
                {
                    "name": engine_trace.get("name", "engine"),
                    "start_ms": 0.0,
                    "duration_ms": engine_trace.get("duration_ms", 0.0),
                    "children": engine_trace.get("spans", []),
                }
            )
        return {
            "trace_id": trace_id,
            "name": "request",
            "duration_ms": round(e2e_ms, 4),
            "spans": [
                {
                    "name": "coalesce_wait",
                    "start_ms": 0.0,
                    "duration_ms": round(wait_ms, 4),
                    "children": [],
                },
                {
                    "name": "batch_exec",
                    "start_ms": round(wait_ms, 4),
                    "duration_ms": round(exec_s * 1000.0, 4),
                    "children": children,
                },
            ],
        }

    def _observe_failure(
        self, query: Query, trace_id: str | None, started: float, exc: Exception
    ) -> None:
        """Count a failed query against the SLO and always-keep its trace."""
        e2e_ms = (time.perf_counter() - started) * 1000.0
        self.slo.observe(e2e_ms, error=True)
        if trace_id is not None:
            self.traces.add(
                {
                    "trace_id": trace_id,
                    "name": "request",
                    "error": f"{type(exc).__name__}: {exc}",
                    "backend": query.backend,
                    "duration_ms": round(e2e_ms, 4),
                    "spans": [],
                },
                e2e_ms=e2e_ms,
                error=True,
            )

    async def _handle_mutation(self, path: str, body: bytes) -> tuple[int, dict, dict[str, str]]:
        """Apply one upsert/delete/compact through the batch executor.

        Writes run on the same single thread as the coalesced search
        batches, so every batch sees either all of a mutation or none of
        it, and the admission-control / drain bookkeeping covers writes
        exactly like reads.
        """
        retry = {"Retry-After": f"{self.config.retry_after_s:g}"}
        if self._draining:
            self.stats.observe_error("unavailable")
            return 503, {"error": "the server is draining"}, retry
        if self._in_flight >= self.config.max_pending:
            self.stats.observe_rejected("busy")
            return (
                429,
                {"error": f"{self._in_flight} queries in flight (limit {self.config.max_pending})"},
                retry,
            )
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats.observe_rejected("invalid")
            return 400, {"error": f"request body is not valid JSON: {exc}"}, {}
        try:
            apply = self._decode_mutation(path, parsed)
        except WireFormatError as exc:
            self.stats.observe_rejected("invalid")
            return 400, {"error": str(exc)}, {}
        loop = asyncio.get_running_loop()
        self._in_flight += 1
        try:
            payload = await loop.run_in_executor(self._executor, apply)
        except (ShardWorkerError, RuntimeError) as exc:
            self.stats.observe_error("unavailable")
            return 503, {"error": str(exc)}, retry
        except (ValueError, KeyError, NotImplementedError) as exc:
            self.stats.observe_rejected("invalid")
            return 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500, not a crash
            self.stats.observe_error("internal")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        finally:
            self._in_flight -= 1
        payload["schema_version"] = WIRE_SCHEMA_VERSION
        token = format_session(payload.get("wal_seq"))
        if token is not None:
            payload["session"] = token
        return 200, payload, {}

    def _decode_mutation(self, path: str, parsed: Any):
        """Decode one mutation body into a thunk run on the batch executor."""
        engine = self.engine
        if path == "/mutate":
            backend_name, ops, durability = decode_mutate(parsed)
            if durability is None:
                durability = self.config.durability

            def apply() -> dict:
                # engine.mutate appends the batch to the WAL and fsyncs
                # before returning (at "wal" durability), and this thunk
                # completes before the response is written -- so a client
                # ack always means the batch is on disk.
                outcome = engine.mutate(backend_name, ops, durability)
                self.stats.observe_mutation("mutate")
                for op in ops:
                    self.stats.observe_mutation(op["op"])
                return outcome

        elif path == "/upsert":
            backend_name, record, obj_id = decode_upsert(parsed)

            def apply() -> dict:
                assigned = engine.upsert(backend_name, record, obj_id)
                self.stats.observe_mutation("upsert")
                return {"backend": backend_name, "id": int(assigned)}

        elif path == "/delete":
            backend_name, obj_id = decode_delete(parsed)

            def apply() -> dict:
                deleted = engine.delete(backend_name, obj_id)
                self.stats.observe_mutation("delete")
                return {"backend": backend_name, "id": obj_id, "deleted": bool(deleted)}

        else:
            backend_name = decode_compact(parsed)
            if backend_name is None and not isinstance(engine, ShardedEngine):
                attached = engine.attached_backends()
                if len(attached) != 1:
                    raise WireFormatError(
                        f"this server serves {len(attached)} backends "
                        f"({', '.join(attached) or 'none'}); pass 'backend'"
                    )
                backend_name = attached[0]

            def apply() -> dict:
                summary = engine.compact(backend_name)
                self.stats.observe_mutation("compact")
                if isinstance(summary, list):  # per-shard summaries
                    return {"backend": engine.backend_name, "shards": summary}
                return summary

        return apply

    def _healthz(self) -> dict:
        slo = self.slo.status()
        status = "draining" if self._draining else "ok"
        payload = {
            "status": status,
            "schema_version": WIRE_SCHEMA_VERSION,
            "engine": type(self.engine).__name__,
            "in_flight": self._in_flight,
            "slo": {
                "breaching": slo["breaching"],
                "fast_burn_rate": slo["windows"]["fast"]["burn_rate"],
                "slow_burn_rate": slo["windows"]["slow"]["burn_rate"],
            },
        }
        shard_health = getattr(self.engine, "shard_health", None)
        if shard_health is not None and not self._draining:
            try:
                entries = shard_health()
            except Exception:  # noqa: BLE001 - scoreboard must not take /healthz down
                self.stats.observe_suppressed("healthz_shard_health")
                entries = []
            # The replica overlay decides the grade: a shard with zero live
            # replicas makes the node "failing" (it cannot answer for that
            # id range); down-but-covered replicas or a catching-up sibling
            # make it "degraded".  Scoreboard grades (error ratios) never
            # escalate past degraded while replicas are live -- transparent
            # failover means an unhealthy window is survivable.
            degraded = False
            for entry in entries:
                live = entry.get("live_replicas")
                if live is not None:
                    if live == 0:
                        payload["status"] = "failing"
                        return payload
                    if live < entry.get("num_replicas", live):
                        degraded = True
                if entry.get("status") not in ("ok", "idle", None):
                    degraded = True
            if degraded:
                payload["status"] = "degraded"
        return payload

    def _stats_payload(self) -> dict:
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "server": self.stats.snapshot(),
            "config": {
                "max_batch_size": self.config.max_batch_size,
                "max_wait_ms": self.config.max_wait_ms,
                "max_pending": self.config.max_pending,
            },
        }
        stats = getattr(self.engine, "stats", None)
        if stats is not None and hasattr(stats, "snapshot"):
            payload["engine"] = stats.snapshot()
        replica_status = getattr(self.engine, "replica_status", None)
        if replica_status is not None:
            try:
                payload["replicas"] = replica_status()
            except Exception:  # noqa: BLE001 - a respawn race must not take /stats down
                self.stats.observe_suppressed("replica_status")
        return payload

    def _metrics_text(self) -> str:
        registry = self.stats.registry
        registry.gauge("server_queue_depth", "queries waiting for a batch").set(len(self._queue))
        registry.gauge("server_in_flight", "admitted queries in flight").set(self._in_flight)
        merged = MetricsRegistry()
        merged.merge_wire(registry.to_wire())
        engine_wire = getattr(self.engine, "metrics_wire", None)
        if engine_wire is not None:
            try:
                merged.merge_wire(engine_wire())
            except Exception:  # noqa: BLE001 - a dead worker must not take /metrics down
                self.stats.observe_suppressed("engine_metrics_wire")
        return merged.render_prometheus()

    def _traces_payload(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "traces": self.traces.snapshot(32),
            "sampling": self.traces.stats(),
        }

    async def _handle_profile(
        self, params: dict[str, str]
    ) -> tuple[int, dict, dict[str, str]]:
        """``GET /debug/profile[?seconds=N]``: folded stacks per thread role.

        With a continuous profiler (``profile_hz``) the bare endpoint
        returns the running aggregate and ``?seconds=N`` the delta over an
        N-second window; without one, ``?seconds=N`` (default 1s) profiles
        on demand.  The asyncio handler only sleeps -- sampling happens on
        the profiler's daemon thread -- so other requests keep flowing.
        """
        raw = params.get("seconds")
        seconds: float | None = None
        if raw is not None:
            try:
                seconds = float(raw)
            except ValueError:
                return 400, {"error": f"bad seconds {raw!r}"}, {}
            if not 0 < seconds <= _MAX_PROFILE_SECONDS:
                return (
                    400,
                    {"error": f"seconds must be in (0, {_MAX_PROFILE_SECONDS:g}]"},
                    {},
                )
        if self.profiler is not None:
            if seconds is None:
                profile = self.profiler.snapshot()
            else:
                before = self.profiler.snapshot()
                await asyncio.sleep(seconds)
                profile = diag.profile_diff(before, self.profiler.snapshot())
        else:
            temporary = diag.SamplingProfiler()
            temporary.start()
            try:
                await asyncio.sleep(seconds if seconds is not None else 1.0)
            finally:
                temporary.stop()
            profile = temporary.snapshot()
        wires = [profile]
        worker_profiles = getattr(self.engine, "profile_wire", None)
        if worker_profiles is not None:
            try:
                wires.extend(worker_profiles())
            except Exception:  # noqa: BLE001 - a dead worker must not take the endpoint down
                self.stats.observe_suppressed("worker_profile_wire")
        merged = diag.merge_profiles(wires)
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "profile": merged,
            "folded": diag.render_folded(merged).splitlines(),
            "top": diag.top_self_frames(merged),
            "attribution": {
                role: round(share, 4)
                for role, share in diag.role_attribution(merged).items()
            },
        }
        return 200, payload, {}

    def _slo_payload(self) -> dict:
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "slo": self.slo.status(),
            "trace_sampling": self.traces.stats(),
        }
        shard_health = getattr(self.engine, "shard_health", None)
        if shard_health is not None:
            try:
                payload["shards"] = shard_health()
            except Exception:  # noqa: BLE001 - scoreboard must not take the endpoint down
                payload["shards"] = []
        return payload

    def _manifest_payload(self) -> dict:
        if isinstance(self.engine, ShardedEngine):
            return {
                "schema_version": WIRE_SCHEMA_VERSION,
                "engine": "ShardedEngine",
                "backend": self.engine.backend_name,
                "default_tau": self.engine.default_tau(),
                "manifest": self.engine.manifest,
            }
        backends = {}
        for name in self.engine.attached_backends():
            backend = self.engine.backend(name)
            store = self.engine.store(name)
            backends[name] = {
                "descriptor": backend.describe(store),
                "default_tau": backend.default_tau(store),
            }
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "engine": type(self.engine).__name__,
            "backends": backends,
        }


class ServerThread:
    """Run an :class:`EngineServer` on a background thread with its own loop.

    Used by tests, the quickstart example and anything else that wants a
    live HTTP endpoint inside one process::

        with ServerThread(engine) as handle:
            client = EngineClient(handle.url)
            ...

    ``stop()`` (or leaving the ``with`` block) drains the server gracefully
    and joins the thread.
    """

    def __init__(
        self,
        engine: Any,
        config: ServerConfig | None = None,
        own_engine: bool = False,
    ):
        self.server = EngineServer(engine, config, own_engine=own_engine)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="engine-server", daemon=True
        )
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def stop(self, timeout: float | None = None) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
