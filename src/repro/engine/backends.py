"""The four domain backends of the engine (Sections 6.1-6.4 of the paper).

Each backend adapts one case-study package -- Hamming, sets, strings, graphs
-- to the :class:`repro.engine.backend.Backend` protocol and registers itself
under its domain name at import time.  The adapters hold no per-query state;
everything mutable lives in the engine.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.common.scratch import segment_sums, sorted_member_mask
from repro.common.stats import SearchResult
from repro.datasets.binary import gist_like
from repro.datasets.molecules import aids_like
from repro.datasets.text import imdb_like
from repro.datasets.tokens import dblp_like
from repro.engine.backend import Backend, register_backend
from repro.engine.persistence import atomic_write, atomic_write_json
from repro.graphs.columnar import ColumnarGraphSearcher
from repro.graphs.dataset import GraphDataset
from repro.graphs.ged import ged_within, graph_edit_distance
from repro.graphs.graph import Graph
from repro.graphs.linear import LinearGraphSearcher
from repro.graphs.pars import ParsSearcher
from repro.graphs.ring import RingGraphSearcher
from repro.hamming.dataset import BinaryVectorDataset
from repro.hamming.gph import GPHSearcher
from repro.hamming.index import PartitionIndex
from repro.hamming.linear import LinearHammingSearcher
from repro.hamming.ring import RingHammingSearcher
from repro.sets.adaptsearch import AdaptSearchSearcher
from repro.sets.columnar import ColumnarSetSearcher
from repro.sets.dataset import SetDataset
from repro.sets.linear import LinearSetSearcher
from repro.sets.partalloc import PartAllocSearcher
from repro.sets.pkwise import PkwiseSearcher
from repro.sets.ring import RingSetSearcher
from repro.sets.similarity import JaccardPredicate, OverlapPredicate, jaccard, overlap
from repro.strings.columnar import ColumnarStringSearcher
from repro.strings.dataset import StringDataset
from repro.strings.edit_distance import edit_distance, edit_distance_within
from repro.strings.linear import LinearStringSearcher
from repro.strings.pivotal import PivotalSearcher
from repro.strings.ring import RingStringSearcher


def _write_json(directory: str, filename: str, payload: dict) -> None:
    atomic_write_json(os.path.join(directory, filename), payload)


def _write_npz(directory: str, filename: str, arrays: dict) -> None:
    # np.savez appends ".npz" to plain string paths, so the atomic temp file
    # goes through a file object instead of a name.
    atomic_write(os.path.join(directory, filename), lambda handle: np.savez(handle, **arrays))


def _read_json(directory: str, filename: str) -> dict | None:
    path = os.path.join(directory, filename)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


# ---------------------------------------------------------------------------
# Hamming
# ---------------------------------------------------------------------------


@dataclass
class HammingStore:
    """A binary-vector dataset plus its build-once partition index."""

    dataset: BinaryVectorDataset
    index: PartitionIndex


class HammingBackend(Backend):
    """Hamming distance over binary vectors (GPH / pigeonring)."""

    name = "hamming"
    mutable = True
    ladder_uses_max_size = False  # the ladder depends only on the dimension

    def prepare(self, dataset: Any) -> HammingStore:
        if isinstance(dataset, HammingStore):
            return dataset
        if not isinstance(dataset, BinaryVectorDataset):
            dataset = BinaryVectorDataset(np.asarray(dataset))
        return HammingStore(dataset=dataset, index=PartitionIndex(dataset))

    def describe(self, store: HammingStore) -> dict:
        return {
            "num_objects": len(store.dataset),
            "d": store.dataset.d,
            "num_parts": store.dataset.m,
        }

    def default_tau(self, store: HammingStore) -> int:
        return max(1, store.dataset.d // 8)

    def query_key(self, payload: Any) -> Hashable:
        vector = np.asarray(payload).astype(np.uint8).reshape(-1)
        return (vector.shape[0], vector.tobytes())

    def make_searcher(
        self,
        store: HammingStore,
        algorithm: str,
        tau: float | int,
        chain_length: int | None,
    ) -> Callable[[Any], SearchResult]:
        self.check_algorithm(algorithm)
        tau = int(tau)
        if algorithm == "ring":
            searcher = RingHammingSearcher(
                store.dataset, chain_length=chain_length or 5, index=store.index
            )
        elif algorithm == "baseline":
            searcher = GPHSearcher(store.dataset, index=store.index)
        else:
            searcher = LinearHammingSearcher(store.dataset)
        return lambda payload: searcher.search(payload, tau)

    def distance(
        self, store: HammingStore, payload: Any, obj_id: int, tau: float | int | None
    ) -> float:
        return self.distances(store, payload, [obj_id], tau)[0]

    def distances(
        self,
        store: HammingStore,
        payload: Any,
        ids: Sequence[int],
        tau: float | int | None,
    ) -> list[float]:
        if not ids:
            return []
        array = np.asarray(ids, dtype=np.int64)
        return store.dataset.distances_to_subset(payload, array).astype(float).tolist()

    def shard_store(self, store: HammingStore, lo: int, hi: int) -> BinaryVectorDataset:
        vectors = store.dataset.vectors[lo:hi]
        return BinaryVectorDataset(vectors, num_parts=store.dataset.m)

    def store_records(self, store: HammingStore) -> np.ndarray:
        return store.dataset.vectors

    def make_dataset(self, store: HammingStore, records: Sequence[Any]) -> BinaryVectorDataset:
        matrix = np.asarray([np.asarray(record, dtype=np.uint8) for record in records])
        return BinaryVectorDataset(matrix, num_parts=store.dataset.m)

    def check_record(self, store: HammingStore, record: Any) -> np.ndarray:
        vector = np.asarray(record, dtype=np.uint8).reshape(-1)
        if vector.shape[0] != store.dataset.d:
            raise ValueError(
                f"a hamming record must be a {store.dataset.d}-dimensional 0/1 "
                f"vector, got {vector.shape[0]} dimensions"
            )
        return vector

    def record_size(self, store: HammingStore, record: Any) -> int:
        return int(np.asarray(record).reshape(-1).shape[0])

    def record_distance(
        self, store: HammingStore, payload: Any, record: Any, tau: float | int | None
    ) -> float:
        query = np.asarray(payload, dtype=np.uint8).reshape(-1)
        vector = np.asarray(record, dtype=np.uint8).reshape(-1)
        return float(np.count_nonzero(query != vector))

    def record_distances(
        self,
        store: HammingStore,
        payload: Any,
        records: Sequence[Any],
        tau: float | int | None,
    ) -> list[float]:
        if not records:
            return []
        query = np.asarray(payload, dtype=np.uint8).reshape(-1)
        matrix = np.asarray([np.asarray(record, dtype=np.uint8).reshape(-1) for record in records])
        return np.count_nonzero(matrix != query, axis=1).astype(float).tolist()

    def payload_to_wire(self, payload: Any) -> list[int]:
        return [int(bit) for bit in np.asarray(payload).reshape(-1)]

    def payload_from_wire(self, data: Any) -> np.ndarray:
        vector = np.asarray(data, dtype=np.uint8).reshape(-1)
        if vector.size == 0:
            raise ValueError("a hamming payload must be a non-empty 0/1 vector")
        return vector

    def tau_ladder(
        self,
        store: HammingStore,
        payload: Any,
        start: float | int | None,
        max_size: int | None = None,
    ) -> Iterable[int]:
        # The ladder depends only on the dimension, which every record shares,
        # so the live maximum (max_size) is irrelevant here.
        d = store.dataset.d
        tau = int(start) if start is not None else self.default_tau(store)
        tau = max(1, min(tau, d))
        while tau < d:
            yield tau
            tau *= 2
        yield d

    def save_store(self, store: HammingStore, directory: str) -> None:
        arrays = {
            "vectors": store.dataset.vectors.astype(np.uint8),
            "num_parts": np.asarray([store.dataset.m], dtype=np.int64),
        }
        for key, value in store.index.state().items():
            arrays[f"idx_{key}"] = value
        _write_npz(directory, "data.npz", arrays)

    def load_store(self, directory: str) -> HammingStore:
        with np.load(os.path.join(directory, "data.npz")) as data:
            dataset = BinaryVectorDataset(data["vectors"], num_parts=int(data["num_parts"][0]))
            state = {
                key[len("idx_") :]: data[key]
                for key in data.files
                if key.startswith("idx_")
            }
        index = PartitionIndex.from_state(dataset, state)
        return HammingStore(dataset=dataset, index=index)

    def save_queries(self, queries: Sequence[Any], directory: str) -> None:
        matrix = np.asarray([np.asarray(q).reshape(-1) for q in queries], dtype=np.uint8)
        _write_npz(directory, "queries.npz", {"queries": matrix})

    def load_queries(self, directory: str) -> list[Any] | None:
        path = os.path.join(directory, "queries.npz")
        if not os.path.exists(path):
            return None
        with np.load(path) as data:
            return [row for row in data["queries"]]

    def make_workload(
        self, size: int, num_queries: int, seed: int
    ) -> tuple[BinaryVectorDataset, list[Any]]:
        workload = gist_like(num_vectors=size, num_queries=num_queries, seed=seed)
        dataset = BinaryVectorDataset(workload.vectors, num_parts=8)
        return dataset, [row for row in workload.queries]


# ---------------------------------------------------------------------------
# Sets
# ---------------------------------------------------------------------------


def _set_predicate(tau: float | int):
    """Overlap for int thresholds, Jaccard for floats in (0, 1]."""
    if isinstance(tau, (int, np.integer)) and not isinstance(tau, bool):
        return OverlapPredicate(int(tau))
    tau = float(tau)
    if tau > 1.0:
        if not tau.is_integer():
            raise ValueError(
                f"a sets threshold above 1 is an overlap count and must be "
                f"integral, got {tau!r}"
            )
        return OverlapPredicate(int(tau))
    return JaccardPredicate(tau)


class SetBackend(Backend):
    """Set similarity (overlap / Jaccard) over token sets (pkwise / pigeonring)."""

    name = "sets"
    algorithms = ("ring", "ring-scalar", "baseline", "adapt", "partalloc", "linear")
    mutable = True

    def validate_tau(self, tau: float | int) -> None:
        """Similarity thresholds: Jaccard in (0, 1], overlap >= 1.

        ``tau=0`` (or any non-positive threshold) matches nothing under
        overlap semantics and is undefined for Jaccard.  Delegates to the
        predicate constructors, so the rules and messages stay
        single-sourced with searcher construction; this merely runs them at
        query-validation / HTTP-400 time instead of deep inside a search.
        """
        _set_predicate(tau)

    def prepare(self, dataset: Any) -> SetDataset:
        if isinstance(dataset, SetDataset):
            return dataset
        return SetDataset(dataset)

    def describe(self, store: SetDataset) -> dict:
        return {"num_objects": len(store), "num_classes": store.num_classes}

    def default_tau(self, store: SetDataset) -> float:
        return 0.8

    def query_key(self, payload: Any) -> Hashable:
        return tuple(sorted(set(payload)))

    def make_searcher(
        self,
        store: SetDataset,
        algorithm: str,
        tau: float | int,
        chain_length: int | None,
    ) -> Callable[[Any], SearchResult]:
        self.check_algorithm(algorithm)
        predicate = _set_predicate(tau)
        if algorithm == "ring":
            # The served hot path: the columnar candidate pipeline, byte-
            # identical to the scalar Ring searcher kept as ``ring-scalar``.
            searcher = ColumnarSetSearcher(store, predicate, chain_length=chain_length or 2)
        elif algorithm == "ring-scalar":
            searcher = RingSetSearcher(store, predicate, chain_length=chain_length or 2)
        elif algorithm == "baseline":
            searcher = PkwiseSearcher(store, predicate)
        elif algorithm == "adapt":
            searcher = AdaptSearchSearcher(store, predicate)
        elif algorithm == "partalloc":
            searcher = PartAllocSearcher(store, predicate)
        else:
            searcher = LinearSetSearcher(store, predicate)
        return searcher.search

    def distance(
        self, store: SetDataset, payload: Any, obj_id: int, tau: float | int | None
    ) -> float:
        return self.distances(store, payload, [obj_id], tau)[0]

    def distances(
        self,
        store: SetDataset,
        payload: Any,
        ids: Sequence[int],
        tau: float | int | None,
    ) -> list[float]:
        encoded = store.encode_query(payload)
        use_overlap = tau is not None and isinstance(_set_predicate(tau), OverlapPredicate)
        if use_overlap:
            return [-float(overlap(store.record(obj_id), encoded)) for obj_id in ids]
        return [-jaccard(store.record(obj_id), encoded) for obj_id in ids]

    def shard_store(self, store: SetDataset, lo: int, hi: int) -> SetDataset:
        return SetDataset(store.raw_records[lo:hi], num_classes=store.num_classes)

    def store_records(self, store: SetDataset) -> list[list[int]]:
        return store.raw_records

    def make_dataset(self, store: SetDataset, records: Sequence[Any]) -> SetDataset:
        return SetDataset(list(records), num_classes=store.num_classes)

    def check_record(self, store: SetDataset, record: Any) -> list[int]:
        try:
            tokens = [int(token) for token in record]
        except TypeError:
            raise ValueError("a sets record must be an iterable of integer tokens") from None
        if not tokens:
            raise ValueError("a sets record needs at least one token")
        return tokens

    def record_size(self, store: SetDataset, record: Any) -> int:
        return len(set(record))

    def record_distance(
        self, store: SetDataset, payload: Any, record: Any, tau: float | int | None
    ) -> float:
        # Token ranks are a bijection on tokens (unseen tokens get unique
        # ranks), so intersection/union sizes -- hence overlap and Jaccard --
        # are identical whether computed on raw tokens or on ranks.
        use_overlap = tau is not None and isinstance(_set_predicate(tau), OverlapPredicate)
        if use_overlap:
            return -float(overlap(record, payload))
        return -jaccard(record, payload)

    def record_distances(
        self,
        store: SetDataset,
        payload: Any,
        records: Sequence[Any],
        tau: float | int | None,
    ) -> list[float]:
        # The whole delta in one kernel: every record's distinct tokens are
        # concatenated and matched against the sorted query with a single
        # searchsorted sweep; per-record overlaps fall out of segment sums.
        if not records:
            return []
        query = np.unique(np.fromiter((int(token) for token in payload), dtype=np.int64))
        distinct = [np.unique(np.asarray(list(record), dtype=np.int64)) for record in records]
        sizes = np.asarray([tokens.size for tokens in distinct], dtype=np.int64)
        flat = np.concatenate(distinct) if distinct else np.empty(0, dtype=np.int64)
        hits = sorted_member_mask(query, flat)
        boundaries = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(sizes, out=boundaries[1:])
        overlaps = segment_sums(hits, boundaries)
        use_overlap = tau is not None and isinstance(_set_predicate(tau), OverlapPredicate)
        if use_overlap:
            return [-float(count) for count in overlaps]
        unions = sizes + query.size - overlaps
        return [
            -(int(count) / int(union)) if union else -1.0
            for count, union in zip(overlaps, unions)
        ]

    def score_matches(self, score: float, tau: float | int) -> bool:
        return -score >= float(tau)

    def payload_to_wire(self, payload: Any) -> list[int]:
        return [int(token) for token in payload]

    def payload_from_wire(self, data: Any) -> list[int]:
        if not isinstance(data, (list, tuple)):
            raise ValueError("a sets payload must be a list of token ids")
        return [int(token) for token in data]

    def tau_ladder(
        self,
        store: SetDataset,
        payload: Any,
        start: float | int | None,
        max_size: int | None = None,
    ) -> Iterable[float | int]:
        if start is not None and isinstance(_set_predicate(start), OverlapPredicate):
            tau = int(start)
            while tau > 1:
                yield tau
                tau = tau // 2
            yield 1
            return
        # Jaccard: any pair sharing one token has J >= 1 / |union|.
        if max_size is None:
            max_size = max((store.size(obj_id) for obj_id in range(len(store))), default=1)
        floor = 1.0 / max(1, len(set(payload)) + max_size)
        tau = float(start) if start is not None else self.default_tau(store)
        while tau > floor:
            yield tau
            tau /= 2.0
        yield floor

    def save_store(self, store: SetDataset, directory: str) -> None:
        _write_json(
            directory,
            "data.json",
            {
                "records": [list(map(int, record)) for record in store.raw_records],
                "num_classes": store.num_classes,
            },
        )

    def load_store(self, directory: str) -> SetDataset:
        data = _read_json(directory, "data.json")
        return SetDataset(data["records"], num_classes=int(data["num_classes"]))

    def save_queries(self, queries: Sequence[Any], directory: str) -> None:
        _write_json(
            directory,
            "queries.json",
            {"queries": [list(map(int, query)) for query in queries]},
        )

    def load_queries(self, directory: str) -> list[Any] | None:
        data = _read_json(directory, "queries.json")
        return None if data is None else data["queries"]

    def make_workload(self, size: int, num_queries: int, seed: int) -> tuple[SetDataset, list[Any]]:
        workload = dblp_like(num_records=size, num_queries=num_queries, seed=seed)
        return SetDataset(workload.records, num_classes=4), list(workload.queries)


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


class StringBackend(Backend):
    """Edit distance over strings (Pivotal / pigeonring)."""

    name = "strings"
    algorithms = ("ring", "ring-scalar", "baseline", "linear")
    mutable = True

    def prepare(self, dataset: Any) -> StringDataset:
        if isinstance(dataset, StringDataset):
            return dataset
        return StringDataset(dataset)

    def describe(self, store: StringDataset) -> dict:
        return {"num_objects": len(store), "kappa": store.kappa}

    def default_tau(self, store: StringDataset) -> int:
        return 2

    def query_key(self, payload: Any) -> Hashable:
        return str(payload)

    def make_searcher(
        self,
        store: StringDataset,
        algorithm: str,
        tau: float | int,
        chain_length: int | None,
    ) -> Callable[[Any], SearchResult]:
        self.check_algorithm(algorithm)
        tau = int(tau)
        if algorithm == "linear" or tau < 1:
            searcher = LinearStringSearcher(store)
            return lambda payload: searcher.search(payload, tau)
        if algorithm == "ring":
            searcher = ColumnarStringSearcher(store, tau, chain_length=chain_length)
        elif algorithm == "ring-scalar":
            searcher = RingStringSearcher(store, tau, chain_length=chain_length)
        else:
            searcher = PivotalSearcher(store, tau)
        return searcher.search

    def distance(
        self, store: StringDataset, payload: Any, obj_id: int, tau: float | int | None
    ) -> float:
        return float(edit_distance(store.record(obj_id), str(payload)))

    def shard_store(self, store: StringDataset, lo: int, hi: int) -> StringDataset:
        return StringDataset(store.records[lo:hi], kappa=store.kappa)

    def store_records(self, store: StringDataset) -> list[str]:
        return store.records

    def make_dataset(self, store: StringDataset, records: Sequence[Any]) -> StringDataset:
        return StringDataset(list(records), kappa=store.kappa)

    def check_record(self, store: StringDataset, record: Any) -> str:
        if not isinstance(record, str):
            raise ValueError(f"a strings record must be a string, got {type(record).__name__}")
        if not record:
            raise ValueError("a strings record must be non-empty")
        return record

    def record_size(self, store: StringDataset, record: Any) -> int:
        return len(record)

    def record_distance(
        self, store: StringDataset, payload: Any, record: Any, tau: float | int | None
    ) -> float:
        return float(edit_distance(record, str(payload)))

    def scan_records(
        self, store: StringDataset, payload: Any, records: Sequence[Any], tau: float | int
    ) -> list[bool]:
        # The delta scan only needs the predicate, so the banded dynamic
        # program (O(tau * n) with early exit) replaces full edit distances.
        query = str(payload)
        limit = int(tau)
        return [edit_distance_within(record, query, limit) for record in records]

    def payload_from_wire(self, data: Any) -> str:
        if not isinstance(data, str):
            raise ValueError("a strings payload must be a string")
        return data

    def tau_ladder(
        self,
        store: StringDataset,
        payload: Any,
        start: float | int | None,
        max_size: int | None = None,
    ) -> Iterable[int]:
        if max_size is None:
            max_size = max((len(record) for record in store.records), default=1)
        max_tau = max(max_size, len(str(payload)), 1)
        tau = int(start) if start is not None else 1
        tau = max(1, min(tau, max_tau))
        while tau < max_tau:
            yield tau
            tau *= 2
        yield max_tau

    def save_store(self, store: StringDataset, directory: str) -> None:
        _write_json(directory, "data.json", {"records": store.records, "kappa": store.kappa})

    def load_store(self, directory: str) -> StringDataset:
        data = _read_json(directory, "data.json")
        return StringDataset(data["records"], kappa=int(data["kappa"]))

    def save_queries(self, queries: Sequence[Any], directory: str) -> None:
        _write_json(directory, "queries.json", {"queries": list(queries)})

    def load_queries(self, directory: str) -> list[Any] | None:
        data = _read_json(directory, "queries.json")
        return None if data is None else data["queries"]

    def make_workload(
        self, size: int, num_queries: int, seed: int
    ) -> tuple[StringDataset, list[Any]]:
        workload = imdb_like(num_records=size, num_queries=num_queries, seed=seed)
        return StringDataset(workload.records, kappa=2), list(workload.queries)


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------


def _graph_to_json(graph: Graph) -> dict:
    return {
        "vertices": [[vertex, graph.vertex_label(vertex)] for vertex in graph.vertices],
        "edges": [[u, v, label] for u, v, label in graph.edges()],
    }


def _graph_from_json(data: dict) -> Graph:
    graph = Graph()
    for vertex, label in data["vertices"]:
        graph.add_vertex(vertex, label)
    for u, v, label in data["edges"]:
        graph.add_edge(u, v, label)
    return graph


class GraphBackend(Backend):
    """Graph edit distance over labelled graphs (Pars / pigeonring)."""

    name = "graphs"
    algorithms = ("ring", "ring-scalar", "baseline", "linear")
    mutable = True

    def prepare(self, dataset: Any) -> GraphDataset:
        if isinstance(dataset, GraphDataset):
            return dataset
        return GraphDataset(dataset)

    def describe(self, store: GraphDataset) -> dict:
        return {"num_objects": len(store)}

    def default_tau(self, store: GraphDataset) -> int:
        return 3

    def query_key(self, payload: Graph) -> Hashable:
        vertices = tuple(
            sorted(
                ((vertex, payload.vertex_label(vertex)) for vertex in payload.vertices),
                key=repr,
            )
        )
        edges = tuple(sorted(payload.edges(), key=repr))
        return (vertices, edges)

    def make_searcher(
        self,
        store: GraphDataset,
        algorithm: str,
        tau: float | int,
        chain_length: int | None,
    ) -> Callable[[Any], SearchResult]:
        self.check_algorithm(algorithm)
        tau = int(tau)
        if algorithm == "linear" or tau < 1:
            searcher = LinearGraphSearcher(store)
            return lambda payload: searcher.search(payload, tau)
        if algorithm == "ring":
            searcher = ColumnarGraphSearcher(store, tau, chain_length=chain_length)
        elif algorithm == "ring-scalar":
            searcher = RingGraphSearcher(store, tau, chain_length=chain_length)
        else:
            searcher = ParsSearcher(store, tau)
        return searcher.search

    def distance(
        self, store: GraphDataset, payload: Graph, obj_id: int, tau: float | int | None
    ) -> float:
        # Capping the branch-and-bound keeps ranking cheap; top-k only ranks
        # ids that already matched at threshold tau, whose GED is <= tau.
        upper = int(tau) if tau is not None else None
        return float(graph_edit_distance(store.graph(obj_id), payload, upper_bound=upper))

    #: largest GED threshold top-k escalation will reach.  Exact GED is
    #: exponential in the threshold, so beyond this radius even a brute-force
    #: scan is intractable; graph top-k is best-effort within it and may
    #: return fewer than k results.
    escalation_cap = 10

    def shard_store(self, store: GraphDataset, lo: int, hi: int) -> GraphDataset:
        return GraphDataset(store.graphs[lo:hi])

    def store_records(self, store: GraphDataset) -> list[Graph]:
        return store.graphs

    def make_dataset(self, store: GraphDataset, records: Sequence[Any]) -> GraphDataset:
        return GraphDataset(list(records))

    def check_record(self, store: GraphDataset, record: Any) -> Graph:
        if not isinstance(record, Graph):
            raise ValueError(f"a graphs record must be a Graph, got {type(record).__name__}")
        if record.num_vertices < 1:
            raise ValueError("a graphs record needs at least one vertex")
        return record

    def record_size(self, store: GraphDataset, record: Graph) -> int:
        return record.num_vertices + record.num_edges

    def record_distance(
        self, store: GraphDataset, payload: Graph, record: Graph, tau: float | int | None
    ) -> float:
        upper = int(tau) if tau is not None else None
        return float(graph_edit_distance(record, payload, upper_bound=upper))

    def scan_records(
        self, store: GraphDataset, payload: Graph, records: Sequence[Any], tau: float | int
    ) -> list[bool]:
        # The delta scan only needs the predicate; ``ged_within`` prunes the
        # branch-and-bound harder than a capped exact distance.
        limit = int(tau)
        return [ged_within(record, payload, limit) for record in records]

    def payload_to_wire(self, payload: Graph) -> dict:
        return _graph_to_json(payload)

    def payload_from_wire(self, data: Any) -> Graph:
        if not isinstance(data, dict) or "vertices" not in data or "edges" not in data:
            raise ValueError("a graphs payload must be a {vertices, edges} object")
        return _graph_from_json(data)

    def tau_ladder(
        self,
        store: GraphDataset,
        payload: Graph,
        start: float | int | None,
        max_size: int | None = None,
    ) -> Iterable[int]:
        if max_size is None:
            max_size = max(
                (graph.num_vertices + graph.num_edges for graph in store.graphs), default=1
            )
        cap = min(max_size + payload.num_vertices + payload.num_edges, self.escalation_cap)
        tau = int(start) if start is not None else 1
        tau = max(1, min(tau, cap))
        # GED verification cost grows steeply with tau, so escalate in +1
        # steps: overshooting by doubling is far more expensive than the
        # extra rungs.
        while tau < cap:
            yield tau
            tau += 1
        yield cap

    def save_store(self, store: GraphDataset, directory: str) -> None:
        _write_json(
            directory,
            "data.json",
            {"graphs": [_graph_to_json(graph) for graph in store.graphs]},
        )

    def load_store(self, directory: str) -> GraphDataset:
        data = _read_json(directory, "data.json")
        return GraphDataset([_graph_from_json(entry) for entry in data["graphs"]])

    def save_queries(self, queries: Sequence[Graph], directory: str) -> None:
        _write_json(
            directory,
            "queries.json",
            {"queries": [_graph_to_json(query) for query in queries]},
        )

    def load_queries(self, directory: str) -> list[Graph] | None:
        data = _read_json(directory, "queries.json")
        if data is None:
            return None
        return [_graph_from_json(entry) for entry in data["queries"]]

    def make_workload(
        self, size: int, num_queries: int, seed: int
    ) -> tuple[GraphDataset, list[Graph]]:
        workload = aids_like(num_graphs=size, num_queries=num_queries, seed=seed)
        return GraphDataset(workload.graphs), list(workload.queries)


HAMMING = register_backend(HammingBackend())
SETS = register_backend(SetBackend())
STRINGS = register_backend(StringBackend())
GRAPHS = register_backend(GraphBackend())
