"""Top-k search by adaptive threshold escalation.

The paper's framework answers *thresholded* selection; top-k is layered on
top of it: walk the backend's escalation ladder of thresholds (selective to
permissive), run an ordinary tau-selection at each rung, and stop as soon as
at least ``k`` objects qualify.  The survivors are then ranked by their exact
distance (or negated similarity) and trimmed to ``k``, ties broken by object
id.  The final rung of a ladder is executed with the brute-force searcher
and is exhaustive wherever the domain distance allows, so a dataset with at
least ``k`` comparable objects yields ``k`` results; the graphs backend caps
its ladder (exact GED is exponential in the threshold) and may return fewer.

Each rung is an ordinary engine query, so rung results land in the LRU cache
and successive top-k queries with overlapping ladders reuse them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.common.obs import span
from repro.engine.api import Query, Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.executor import SearchEngine


def run_topk(engine: "SearchEngine", query: Query) -> Response:
    """Answer a ``k``-query by escalating tau-selections through ``engine``."""
    if query.k is None:
        raise ValueError("run_topk needs a query with k set")
    backend = engine.backend(query.backend)
    ladder = engine.escalation_ladder(query.backend, query.payload, query.tau)
    if not ladder:
        raise ValueError(f"backend {backend.name!r} produced an empty tau ladder")

    response: Response | None = None
    num_candidates = 0
    candidate_time = 0.0
    verify_time = 0.0
    for position, tau in enumerate(ladder):
        exhaustive = position == len(ladder) - 1
        # Rungs inherit the ambient trace through the context variable, so
        # they carry no trace_id of their own (and produce no nested trace).
        rung = replace(
            query,
            tau=tau,
            k=None,
            algorithm="linear" if exhaustive else query.algorithm,
            trace_id=None,
        )
        with span(f"rung[tau={tau}]"):
            response = engine.search(rung)
        num_candidates += response.num_candidates
        candidate_time += response.candidate_time
        verify_time += response.verify_time
        if response.num_results >= query.k:
            break

    with span("rank"):
        scores = engine.rank_scores(
            query.backend, query.payload, response.ids, response.tau_effective
        )
        scored = sorted(zip(scores, response.ids))[: query.k]
    return Response(
        query=query,
        ids=[obj_id for _score, obj_id in scored],
        scores=[score for score, _obj_id in scored],
        tau_effective=response.tau_effective,
        num_candidates=num_candidates,
        candidate_time=candidate_time,
        verify_time=verify_time,
    )
