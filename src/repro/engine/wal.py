"""Per-index write-ahead log: crash durability for acknowledged mutations.

The mutation overlay of :mod:`repro.engine.mutation` lives in memory until an
explicit save writes ``mutations.json`` -- a crash between saves silently
drops every acknowledged upsert and delete.  This module closes that gap the
way LSM engines do, with a **write-ahead log** per served index:

* every mutation batch is appended to the WAL *and fsynced* before the
  caller is acknowledged (``durability="wal"``; ``"memory"`` appends without
  the fsync and rides on the next synced batch -- group commit);
* on load, the WAL is replayed into the delta store, so the recovered index
  contains exactly the acknowledged prefix of the write history;
* a torn tail (partial record from a crash mid-append) or a
  checksum-corrupted record is detected and cleanly discarded together with
  everything after it -- the WAL is trusted only up to its last valid
  record;
* after a checkpoint (an explicit save, or the auto-compaction swap) the
  log is truncated up to the checkpointed sequence number, keeping replay
  bounded.

File layout (all integers little-endian)::

    8 bytes   magic ``PRWAL001``
    repeated  <u32 payload length> <u32 crc32(payload)> <payload>

where each payload is one UTF-8 JSON *batch document*::

    {"seq": <int>, "backend": <name>, "ops": [<op>, ...]}

and each op is either ``{"op": "upsert", "id": <int>, "record": <wire>}``
or ``{"op": "delete", "id": <int>}``.  Records cross through the backend's
wire codec, and upserts always carry the **explicit** external id the engine
assigned at accept time, so replay is deterministic and idempotent: the same
batch applied twice produces the same overlay, and batches whose ``seq`` is
already covered by the container manifest's checkpoint are skipped.

Sequence numbers are per-WAL, start at 1, and keep increasing across
truncations (the checkpointed seq is recorded in the container manifest and
restored at attach time), so "which batches does this container already
contain" is always a single integer comparison.

The module also hosts :class:`AutoCompactionPolicy` -- the delta-size /
scan-cost crossover rule that decides when the engine folds the overlay back
into a rebuilt main store off the write path.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engine.mutation import DeltaStore

WAL_MAGIC = b"PRWAL001"
_RECORD_HEADER = struct.Struct("<II")

#: Acknowledgment levels for mutation batches.  ``"wal"`` fsyncs the log
#: before the batch is acknowledged; ``"memory"`` appends without syncing
#: (the next synced batch or checkpoint makes it durable).
DURABILITY_LEVELS = ("memory", "wal")


class WalCorruptionError(ValueError):
    """A WAL file does not start with the expected magic bytes."""


@dataclass(frozen=True)
class WalBatch:
    """One decoded batch record of a WAL file."""

    seq: int
    backend: str
    ops: tuple[dict, ...]
    offset: int
    num_bytes: int


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (after create/rename)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem refuses dir fsync
        pass
    finally:
        os.close(fd)


def read_wal(path: str) -> tuple[list[WalBatch], int, int, str | None]:
    """Scan a WAL file, stopping at the first invalid byte.

    Returns ``(batches, valid_end, file_size, tail_error)``: the decodable
    batch prefix, the byte offset where validity ends, the file size, and
    why scanning stopped (``None`` when the whole file is valid).  The
    prefix property is the recovery invariant: a record is trusted only if
    every record before it is intact, so a torn or corrupted record
    invalidates itself *and everything after it*.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    size = len(data)
    if size == 0:
        return [], 0, 0, "empty file (missing magic)"
    if size < len(WAL_MAGIC) or data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptionError(f"{path!r} is not a write-ahead log (bad magic)")
    offset = len(WAL_MAGIC)
    batches: list[WalBatch] = []
    while offset < size:
        if offset + _RECORD_HEADER.size > size:
            return batches, offset, size, "torn record header"
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        start = offset + _RECORD_HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            return batches, offset, size, "torn record payload"
        if zlib.crc32(payload) != crc:
            return batches, offset, size, "record checksum mismatch"
        try:
            doc = json.loads(payload.decode("utf-8"))
            batch = WalBatch(
                seq=int(doc["seq"]),
                backend=str(doc.get("backend", "")),
                ops=tuple(doc["ops"]),
                offset=offset,
                num_bytes=_RECORD_HEADER.size + length,
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return batches, offset, size, "undecodable record payload"
        batches.append(batch)
        offset += _RECORD_HEADER.size + length
    return batches, offset, size, None


def wal_summary(path: str) -> dict:
    """JSON-friendly description of a WAL file (the ``wal-inspect`` view)."""
    batches, valid_end, size, tail_error = read_wal(path)
    return {
        "path": path,
        "size_bytes": size,
        "valid_bytes": valid_end,
        "discarded_bytes": size - valid_end,
        "tail_error": tail_error,
        "num_batches": len(batches),
        "last_seq": batches[-1].seq if batches else 0,
        "batches": [
            {
                "seq": batch.seq,
                "backend": batch.backend,
                "num_ops": len(batch.ops),
                "upserts": sum(1 for op in batch.ops if op.get("op") == "upsert"),
                "deletes": sum(1 for op in batch.ops if op.get("op") == "delete"),
                "offset": batch.offset,
                "num_bytes": batch.num_bytes,
            }
            for batch in batches
        ],
    }


def replay_batches(path: str, after_seq: int = 0) -> list[WalBatch]:
    """Valid batches with ``seq`` past a checkpoint (the shared-lineage view).

    Replicas sharing one parent-owned WAL catch up by reading the file
    directly: the parent appends, every replica replays whatever suffix it
    has not folded in yet.  A missing file is an empty history (the parent
    has not appended anything), not an error.
    """
    if not os.path.exists(path):
        return []
    return [batch for batch in read_wal(path)[0] if batch.seq > after_seq]


class WriteAheadLog:
    """An append-only, checksummed mutation log for one served index.

    Opening an existing file scans it, **truncates** any torn or corrupted
    tail in place (recording why in :attr:`tail_discarded`), and resumes
    sequence numbering after the last valid batch.  Appends and truncations
    are serialised by an internal lock, so a background compaction can
    rotate the log while writers keep appending.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.RLock()
        self.tail_discarded: str | None = None
        #: Size of the most recently appended record (header + payload);
        #: read by the engine's WAL throughput instrumentation.
        self.last_append_bytes = 0
        if os.path.exists(path):
            batches, valid_end, size, tail_error = read_wal(path)
            self._last_seq = batches[-1].seq if batches else 0
            self._handle = open(path, "r+b")
            if tail_error is not None:
                # Discard the invalid suffix so later appends extend a
                # clean prefix instead of burying garbage mid-file.  An
                # empty (0-byte) file -- e.g. created but never synced --
                # is re-stamped with the magic the same way.
                if size > 0:
                    self.tail_discarded = f"{tail_error} ({size - valid_end} bytes)"
                if valid_end == 0:
                    self._handle.write(WAL_MAGIC)
                    valid_end = len(WAL_MAGIC)
                self._handle.truncate(valid_end)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._handle.seek(0, os.SEEK_END)
        else:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "x+b")
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            _fsync_directory(directory)
            self._last_seq = 0

    # -- state ---------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended batch."""
        with self._lock:
            return self._last_seq

    def resume_from(self, seq: int) -> None:
        """Advance sequencing past ``seq`` (the container's checkpoint).

        After a checkpoint truncates the log, the file alone no longer
        remembers how far numbering got; the engine restores it from the
        manifest so sequence numbers never repeat.
        """
        with self._lock:
            self._last_seq = max(self._last_seq, int(seq))

    def batches(self) -> list[WalBatch]:
        """Re-read every valid batch currently on disk (the replay view)."""
        with self._lock:
            return read_wal(self.path)[0]

    def describe(self) -> dict:
        """Cheap JSON-friendly state for ``durability_info()``."""
        with self._lock:
            return {
                "path": self.path,
                "last_seq": self._last_seq,
                "size_bytes": os.path.getsize(self.path),
                "tail_discarded": self.tail_discarded,
            }

    # -- writes --------------------------------------------------------------

    def append(self, backend_name: str, ops: Sequence[dict], sync: bool = True) -> int:
        """Append one batch; fsync before returning when ``sync`` is True.

        Returns the sequence number assigned to the batch.  With
        ``sync=False`` the bytes reach the OS (a process crash keeps them)
        but not necessarily the disk -- the ``"memory"`` durability level.
        """
        with self._lock:
            seq = self._last_seq + 1
            doc = {"seq": seq, "backend": backend_name, "ops": list(ops)}
            payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
            self._handle.write(_RECORD_HEADER.pack(len(payload), zlib.crc32(payload)))
            self._handle.write(payload)
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())
            self._last_seq = seq
            self.last_append_bytes = _RECORD_HEADER.size + len(payload)
            return seq

    def sync(self) -> None:
        """Fsync pending appends (promotes earlier ``"memory"`` batches)."""
        with self._lock:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def truncate_upto(self, seq: int) -> None:
        """Drop every batch with ``seq`` <= the given checkpoint, atomically.

        The surviving suffix (batches appended after the checkpoint was
        snapshotted) is rewritten to a temp file and renamed over the log,
        so a crash mid-truncate leaves either the old or the new file --
        never a half-written one.
        """
        with self._lock:
            survivors = [batch for batch in self.batches() if batch.seq > seq]
            temp_path = self.path + ".tmp"
            with open(self.path, "rb") as source, open(temp_path, "wb") as temp:
                temp.write(WAL_MAGIC)
                for batch in survivors:
                    source.seek(batch.offset)
                    temp.write(source.read(batch.num_bytes))
                temp.flush()
                os.fsync(temp.fileno())
            self._handle.close()
            os.replace(temp_path, self.path)
            _fsync_directory(os.path.dirname(self.path))
            self._handle = open(self.path, "r+b")
            self._handle.seek(0, os.SEEK_END)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Op codec (engine form <-> WAL/wire form)
# ---------------------------------------------------------------------------


def op_to_wire(backend: Any, op: dict) -> dict:
    """Engine-form op (decoded record, explicit id) -> WAL/wire form."""
    if op["op"] == "upsert":
        return {"op": "upsert", "id": int(op["id"]), "record": backend.record_to_wire(op["record"])}
    if op["op"] == "delete":
        return {"op": "delete", "id": int(op["id"])}
    raise ValueError(f"unknown mutation op {op.get('op')!r}")


def op_from_wire(backend: Any, doc: dict) -> dict:
    """WAL/wire-form op -> engine form with the record decoded."""
    kind = doc.get("op")
    if kind == "upsert":
        record = backend.record_from_wire(doc["record"])
        return {"op": "upsert", "id": int(doc["id"]), "record": record}
    if kind == "delete":
        return {"op": "delete", "id": int(doc["id"])}
    raise ValueError(f"unknown mutation op {kind!r}")


def apply_op(delta: DeltaStore, op: dict) -> DeltaStore:
    """Apply one engine-form op (explicit id) to an overlay; pure replay."""
    if op["op"] == "upsert":
        delta, _ = delta.with_upsert(op["record"], op["id"])
        return delta
    if op["op"] == "delete":
        delta, _ = delta.with_delete(op["id"])
        return delta
    raise ValueError(f"unknown mutation op {op.get('op')!r}")


# ---------------------------------------------------------------------------
# Auto-compaction policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AutoCompactionPolicy:
    """When to fold the delta overlay back into a rebuilt main store.

    Every query pays an exact linear scan over the delta records on top of
    the main pipeline's candidate work, so the natural trigger is the
    crossover between the two: once the delta holds more records than
    ``cost_ratio`` x the average candidates the main funnel generates per
    query (the ``engine_candidates_generated_total`` stat), scanning the
    delta dominates and compaction pays for itself.  ``min_delta_records``
    keeps tiny overlays from churning rebuilds, and ``max_delta_records``
    bounds the overlay (and WAL replay time) even for write-only workloads
    where no query traffic feeds the funnel stats.
    """

    min_delta_records: int = 256
    cost_ratio: float = 0.5
    max_delta_records: int = 8192

    def __post_init__(self) -> None:
        if self.min_delta_records < 1:
            raise ValueError("min_delta_records must be >= 1")
        if self.cost_ratio <= 0:
            raise ValueError("cost_ratio must be positive")
        if self.max_delta_records < self.min_delta_records:
            raise ValueError("max_delta_records must be >= min_delta_records")

    def should_compact(self, delta_records: int, avg_generated: float) -> bool:
        """Decide from the overlay size and the funnel's per-query cost."""
        if delta_records >= self.max_delta_records:
            return True
        if delta_records < self.min_delta_records:
            return False
        if avg_generated <= 0:
            # No query traffic yet: the delta is pure replay/memory overhead
            # with nothing to amortise it, so compact at the floor.
            return True
        return delta_records >= self.cost_ratio * avg_generated

    def summary(self) -> dict:
        return {
            "min_delta_records": self.min_delta_records,
            "cost_ratio": self.cost_ratio,
            "max_delta_records": self.max_delta_records,
        }
