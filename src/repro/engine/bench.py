"""Benchmark harness shared by the CLI, the benchmark suite and CI.

One :func:`run_bench` call measures a query workload against anything that
serves ``search`` / ``search_batch`` (a :class:`repro.engine.executor.
SearchEngine` or a :class:`repro.engine.sharding.ShardedEngine`):

* a **latency pass** answers the workload one query at a time and records
  each query's wall latency, summarised as p50/p95/mean/max, and
* a **throughput pass** replays the workload ``repeat`` times through
  ``search_batch`` (pipelined across shards for the sharded engine) and
  reports queries per second.

Reports are plain dicts under :data:`BENCH_SCHEMA_VERSION` so the files CI
compares (``benchmarks/BENCH_all.json``) are self-describing and the
regression gate can refuse to diff incompatible schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.common.stats import Timer
from repro.engine.api import Query, Response

#: Schema of every report this module emits (bump on incompatible changes).
BENCH_SCHEMA_VERSION = 1


class Servable(Protocol):
    """The serving surface run_bench measures."""

    def search(self, query: Query) -> Response: ...

    def search_batch(self, queries: Sequence[Query]) -> list[Response]: ...


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1]) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass
class BenchReport:
    """Latency and throughput of one workload against one serving engine."""

    num_queries: int
    repeat: int
    throughput_qps: float
    wall_seconds: float
    p50_ms: float
    p95_ms: float
    mean_ms: float
    max_ms: float

    def to_dict(self) -> dict:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "num_queries": self.num_queries,
            "repeat": self.repeat,
            "throughput_qps": self.throughput_qps,
            "wall_seconds": self.wall_seconds,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
        }


def run_bench(
    engine: Servable, queries: Sequence[Query], repeat: int = 1
) -> tuple[BenchReport, list[Response]]:
    """Measure a workload; returns the report and the latency-pass responses.

    The first query runs once untimed so searcher construction (per worker,
    for a sharded engine) does not pollute the latency percentiles.  The
    latency-pass responses let callers verify the served results without
    re-running the workload.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("run_bench needs at least one query")
    if repeat < 1:
        raise ValueError("repeat must be at least 1")

    engine.search(queries[0])  # warmup: build searchers before any timing
    latencies_ms: list[float] = []
    responses: list[Response] = []
    for query in queries:
        timer = Timer()
        responses.append(engine.search(query))
        latencies_ms.append(timer.elapsed() * 1000.0)

    batch = queries * repeat
    timer = Timer()
    engine.search_batch(batch)
    wall = timer.elapsed()

    return (
        BenchReport(
            num_queries=len(batch),
            repeat=repeat,
            throughput_qps=len(batch) / wall if wall else 0.0,
            wall_seconds=wall,
            p50_ms=percentile(latencies_ms, 0.50),
            p95_ms=percentile(latencies_ms, 0.95),
            mean_ms=sum(latencies_ms) / len(latencies_ms),
            max_ms=max(latencies_ms),
        ),
        responses,
    )
