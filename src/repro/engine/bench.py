"""Benchmark harness shared by the CLI, the benchmark suite and CI.

One :func:`run_bench` call measures a query workload against anything that
serves ``search`` / ``search_batch`` (a :class:`repro.engine.executor.
SearchEngine` or a :class:`repro.engine.sharding.ShardedEngine`):

* a **latency pass** answers the workload one query at a time and records
  each query's wall latency, summarised as p50/p95/mean/max, and
* a **throughput pass** replays the workload ``repeat`` times through
  ``search_batch`` (pipelined across shards for the sharded engine) and
  reports queries per second.

:func:`run_load_bench` is the network-side counterpart: a closed- or
open-loop load generator driving a live HTTP server
(:mod:`repro.engine.server`) through :class:`repro.engine.client.
EngineClient` connections, recording p50/p95/p99 latency, achieved QPS,
admission-control rejections and the observed micro-batch coalescing.

Reports are plain dicts under :data:`BENCH_SCHEMA_VERSION` so the files CI
compares (``benchmarks/BENCH_all.json``) are self-describing and the
regression gate can refuse to diff incompatible schemas.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Protocol, Sequence

from repro.common.stats import Timer
from repro.engine.api import Query, Response

#: Schema of every report this module emits (bump on incompatible changes).
BENCH_SCHEMA_VERSION = 2


class Servable(Protocol):
    """The serving surface run_bench measures."""

    def search(self, query: Query) -> Response: ...

    def search_batch(self, queries: Sequence[Query]) -> list[Response]: ...


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1]) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass
class BenchReport:
    """Latency and throughput of one workload against one serving engine."""

    num_queries: int
    repeat: int
    throughput_qps: float
    wall_seconds: float
    p50_ms: float
    p95_ms: float
    mean_ms: float
    max_ms: float

    def to_dict(self) -> dict:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "num_queries": self.num_queries,
            "repeat": self.repeat,
            "throughput_qps": self.throughput_qps,
            "wall_seconds": self.wall_seconds,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
        }


def run_bench(
    engine: Servable, queries: Sequence[Query], repeat: int = 1
) -> tuple[BenchReport, list[Response]]:
    """Measure a workload; returns the report and the latency-pass responses.

    The first query runs once untimed so searcher construction (per worker,
    for a sharded engine) does not pollute the latency percentiles.  The
    latency-pass responses let callers verify the served results without
    re-running the workload.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("run_bench needs at least one query")
    if repeat < 1:
        raise ValueError("repeat must be at least 1")

    engine.search(queries[0])  # warmup: build searchers before any timing
    latencies_ms: list[float] = []
    responses: list[Response] = []
    for query in queries:
        timer = Timer()
        responses.append(engine.search(query))
        latencies_ms.append(timer.elapsed() * 1000.0)

    batch = queries * repeat
    timer = Timer()
    engine.search_batch(batch)
    wall = timer.elapsed()

    return (
        BenchReport(
            num_queries=len(batch),
            repeat=repeat,
            throughput_qps=len(batch) / wall if wall else 0.0,
            wall_seconds=wall,
            p50_ms=percentile(latencies_ms, 0.50),
            p95_ms=percentile(latencies_ms, 0.95),
            mean_ms=sum(latencies_ms) / len(latencies_ms),
            max_ms=max(latencies_ms),
        ),
        responses,
    )


# ---------------------------------------------------------------------------
# Network load generation (against a live HTTP server)
# ---------------------------------------------------------------------------


@dataclass
class LoadReport:
    """One load-generator run against a live engine server.

    ``achieved_qps`` counts successfully answered requests over the span
    from the first dispatch to the last completion.  In closed-loop mode
    each of ``concurrency`` workers keeps exactly one request outstanding;
    in open-loop mode requests are dispatched at ``target_qps`` regardless
    of completions and latency includes any queueing delay, so an
    overloaded server shows up as a latency explosion rather than a
    flattering slowdown of the generator (the coordinated-omission trap).
    """

    mode: str
    concurrency: int
    num_requests: int
    num_ok: int
    num_rejected: int
    num_errors: int
    wall_seconds: float
    achieved_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    avg_batch_size: float
    target_qps: float | None = None

    def to_dict(self) -> dict:
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "mode": self.mode,
            "concurrency": self.concurrency,
            "num_requests": self.num_requests,
            "num_ok": self.num_ok,
            "num_rejected": self.num_rejected,
            "num_errors": self.num_errors,
            "wall_seconds": self.wall_seconds,
            "achieved_qps": self.achieved_qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "avg_batch_size": self.avg_batch_size,
        }
        if self.target_qps is not None:
            payload["target_qps"] = self.target_qps
        return payload


def wire_requests(
    backend: str,
    payloads: Sequence[Any],
    tau: float | int | None = None,
    k: int | None = None,
    chain_length: int | None = None,
    algorithm: str = "ring",
    repeat: int = 1,
) -> list[dict]:
    """Pre-encode a workload into wire bodies, outside any timed loop."""
    from repro.engine.wire import encode_query

    encoded = [
        encode_query(
            Query(
                backend=backend,
                payload=payload,
                tau=tau,
                k=k,
                chain_length=chain_length,
                algorithm=algorithm,
            )
        )
        for payload in payloads
    ]
    return encoded * repeat


def _summarise_load(
    mode: str,
    concurrency: int,
    num_requests: int,
    latencies_ms: list[float],
    batch_sizes: list[int],
    rejected: int,
    errors: int,
    wall: float,
    target_qps: float | None = None,
) -> LoadReport:
    ok = len(latencies_ms)
    return LoadReport(
        mode=mode,
        concurrency=concurrency,
        num_requests=num_requests,
        num_ok=ok,
        num_rejected=rejected,
        num_errors=errors,
        wall_seconds=wall,
        achieved_qps=ok / wall if wall else 0.0,
        p50_ms=percentile(latencies_ms, 0.50) if ok else 0.0,
        p95_ms=percentile(latencies_ms, 0.95) if ok else 0.0,
        p99_ms=percentile(latencies_ms, 0.99) if ok else 0.0,
        mean_ms=sum(latencies_ms) / ok if ok else 0.0,
        max_ms=max(latencies_ms) if ok else 0.0,
        avg_batch_size=sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0,
        target_qps=target_qps,
    )


def run_load_bench(
    base_url: str,
    requests: Sequence[dict],
    concurrency: int = 8,
    mode: str = "closed",
    target_qps: float | None = None,
    topk: bool = False,
    timeout: float = 30.0,
) -> LoadReport:
    """Drive a live engine server with a pre-encoded wire workload.

    Args:
        base_url: the server, e.g. ``"http://127.0.0.1:8080"``.
        requests: wire bodies from :func:`wire_requests`; the run issues
            exactly ``len(requests)`` requests.
        concurrency: worker connections (closed loop: one outstanding
            request each; open loop: the dispatch pool size).
        mode: ``"closed"`` or ``"open"``.
        target_qps: open-loop dispatch rate; required for ``mode="open"``.
        topk: send to ``/search/topk`` instead of ``/search``.

    Admission-control rejections (429) count as ``num_rejected``, other
    failures as ``num_errors``; neither contributes a latency sample.
    """
    from repro.engine.client import EngineClient, ServerBusyError

    requests = list(requests)
    if not requests:
        raise ValueError("run_load_bench needs at least one request")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (target_qps is None or target_qps <= 0):
        raise ValueError("open-loop mode needs a positive target_qps")

    lock = threading.Lock()
    latencies_ms: list[float] = []
    batch_sizes: list[int] = []
    counters = {"rejected": 0, "errors": 0, "next": 0}

    def record(latency_ms: float, batch_size: int) -> None:
        with lock:
            latencies_ms.append(latency_ms)
            batch_sizes.append(batch_size)

    def issue(client: EngineClient, body: dict, started: float) -> None:
        try:
            response = client.search_wire(body, topk=topk)
        except ServerBusyError:
            with lock:
                counters["rejected"] += 1
        except Exception:
            with lock:
                counters["errors"] += 1
        else:
            record((time.perf_counter() - started) * 1000.0, response.batch_size)

    if mode == "closed":

        def worker() -> None:
            with EngineClient(base_url, timeout=timeout) as client:
                while True:
                    with lock:
                        index = counters["next"]
                        if index >= len(requests):
                            return
                        counters["next"] = index + 1
                    issue(client, requests[index], time.perf_counter())

        timer = Timer()
        threads = [
            threading.Thread(target=worker, name=f"load-{i}")
            for i in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = timer.elapsed()
        return _summarise_load(
            mode,
            concurrency,
            len(requests),
            latencies_ms,
            batch_sizes,
            counters["rejected"],
            counters["errors"],
            wall,
        )

    # Open loop: dispatch on a fixed schedule; latency is measured from the
    # *scheduled* send time, so dispatch-pool queueing counts against the
    # server rather than being silently absorbed by the generator.
    interval = 1.0 / target_qps
    clients = threading.local()
    # Per-thread clients outlive their pool threads; track them so their
    # persistent connections are closed once the run is over.
    created: list[EngineClient] = []

    def open_issue(body: dict, scheduled: float) -> None:
        client = getattr(clients, "client", None)
        if client is None:
            client = EngineClient(base_url, timeout=timeout)
            clients.client = client
            with lock:
                created.append(client)
        issue(client, body, scheduled)

    timer = Timer()
    start = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=concurrency, thread_name_prefix="load") as pool:
            futures = []
            for position, body in enumerate(requests):
                scheduled = start + position * interval
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(open_issue, body, scheduled))
            for future in futures:
                future.result()
    finally:
        for client in created:
            client.close()
    wall = timer.elapsed()
    return _summarise_load(
        mode,
        concurrency,
        len(requests),
        latencies_ms,
        batch_sizes,
        counters["rejected"],
        counters["errors"],
        wall,
        target_qps=target_qps,
    )
