"""Command-line front end: ``python -m repro.engine <command>``.

The subcommands make the engine drivable end-to-end without writing code:

* ``build-index`` -- generate a synthetic workload for one backend, build the
  dataset (and, for Hamming, the partition index) once, and save everything
  into an index container directory together with a sample query workload.
* ``query`` -- load a container and answer one stored query, either as a
  thresholded selection (``--tau``) or as a top-k search (``--k``).
* ``bench`` -- load a container, replay the stored workload sequentially and
  on a thread pool, verify both paths agree, and record throughput to a JSON
  report.
* ``build-shards`` -- like ``build-index``, but split the dataset into K
  id-range shards, each its own index container under one directory.
* ``serve-bench`` -- serve a sharded index on K worker processes, replay the
  stored workload pipelined across the shards, and report throughput,
  latency percentiles, and per-shard/merge statistics.
* ``serve`` -- expose an index (plain container or sharded directory,
  autodetected) over HTTP/JSON with micro-batch coalescing and
  backpressure; shuts down gracefully on SIGINT/SIGTERM.
* ``load-bench`` -- drive a running server with the index's stored workload
  at one or more concurrency levels and record achieved QPS plus
  p50/p95/p99 latency to a JSON report.
* ``upsert`` / ``delete`` / ``compact`` -- mutate an index on disk (plain
  container or sharded directory): records land in the delta store, deletes
  tombstone, and ``compact`` folds the overlay into a rebuilt main index.
  Records are given in the backend's JSON wire form.
* ``stats`` -- dump a running server's stats snapshot, or its Prometheus
  text exposition with ``--metrics``.
* ``trace`` -- fetch a running server's recent request traces
  (``/debug/traces``) and pretty-print each span timeline as a tree.
* ``profile`` -- fetch a running server's sampling-profiler snapshot
  (``/debug/profile``) and print the top self-time frames per thread role,
  or the raw flamegraph-collapsed stacks with ``--folded``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Sequence

from repro.common.stats import Timer
from repro.engine.api import Query
from repro.engine.backend import available_backends, get_backend
from repro.engine.bench import run_bench, run_load_bench, wire_requests
from repro.engine.executor import SearchEngine
from repro.engine.sharding import (
    SHARDS_MANIFEST_NAME,
    ShardedEngine,
    build_shards,
    load_shards_manifest,
)


def _parse_tau(text: str) -> float | int:
    """Keep integral thresholds as ints: for ``sets``, ``--tau 1`` must mean
    overlap >= 1, not Jaccard 1.0 (exact equality)."""
    try:
        return int(text)
    except ValueError:
        return float(text)


def _build_index(args: argparse.Namespace) -> int:
    engine = SearchEngine()
    backend = engine.backend(args.backend)
    dataset, queries = backend.make_workload(args.size, args.queries, args.seed)
    timer = Timer()
    engine.add_dataset(args.backend, dataset)
    build_time = timer.elapsed()
    manifest = engine.save_index(args.backend, args.out, queries=queries)
    print(f"built {args.backend} store in {build_time:.2f}s: {manifest['descriptor']}")
    print(f"saved index container with {len(queries)} queries to {args.out}")
    return 0


def _load(engine: SearchEngine, directory: str):
    container = engine.load_index(directory)
    if not container.queries:
        print(f"container {directory} holds no stored queries", file=sys.stderr)
        raise SystemExit(2)
    return container


def _query(args: argparse.Namespace) -> int:
    engine = SearchEngine()
    container = _load(engine, args.index)
    name = container.backend.name
    if not 0 <= args.query < len(container.queries):
        print(f"--query must be in [0, {len(container.queries) - 1}]", file=sys.stderr)
        return 2
    payload = container.queries[args.query]
    tau = args.tau if args.tau is not None else (
        None if args.k is not None else container.backend.default_tau(container.store)
    )
    query = Query(
        backend=name,
        payload=payload,
        tau=tau,
        k=args.k,
        chain_length=args.chain_length,
        algorithm=args.algorithm,
    )
    response = engine.search(query)
    kind = f"top-{args.k}" if args.k is not None else f"tau={tau}"
    print(
        f"[{name}] {kind} algorithm={args.algorithm}: "
        f"{response.num_results} result(s), {response.num_candidates} candidate(s), "
        f"{response.engine_time * 1000.0:.2f} ms"
    )
    if response.scores is not None:
        for obj_id, score in zip(response.ids, response.scores):
            print(f"  id={obj_id}  score={score:g}")
    else:
        print(f"  ids: {response.ids[:20]}{' ...' if response.num_results > 20 else ''}")
    return 0


def _bench(args: argparse.Namespace) -> int:
    engine = SearchEngine(cache_size=0)  # throughput without result-cache effects
    container = _load(engine, args.index)
    name = container.backend.name
    tau = args.tau if args.tau is not None else container.backend.default_tau(container.store)
    queries = [
        Query(
            backend=name,
            payload=payload,
            tau=tau,
            chain_length=args.chain_length,
            algorithm=args.algorithm,
        )
        for payload in container.queries
    ] * args.repeat
    # Warm the searcher cache so both paths measure pure serving.
    engine.search(queries[0])
    engine.reset_stats()

    timer = Timer()
    sequential = engine.search_batch(queries)
    sequential_s = timer.restart()
    parallel = engine.search_batch(queries, parallel=True, max_workers=args.workers)
    parallel_s = timer.elapsed()
    agree = all(sorted(a.ids) == sorted(b.ids) for a, b in zip(sequential, parallel))
    report = {
        "backend": name,
        "tau": tau,
        "algorithm": args.algorithm,
        "num_queries": len(queries),
        "workers": args.workers,
        "sequential_seconds": sequential_s,
        "parallel_seconds": parallel_s,
        "sequential_qps": len(queries) / sequential_s if sequential_s else 0.0,
        "parallel_qps": len(queries) / parallel_s if parallel_s else 0.0,
        "results_agree": agree,
        "stats": engine.stats.snapshot(),
    }
    print(
        f"[{name}] {len(queries)} queries  sequential {report['sequential_qps']:.1f} q/s"
        f"  parallel({args.workers}) {report['parallel_qps']:.1f} q/s"
        f"  agree={agree}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.out}")
    return 0 if agree else 1


def _build_shards(args: argparse.Namespace) -> int:
    engine = SearchEngine()
    backend = engine.backend(args.backend)
    dataset, queries = backend.make_workload(args.size, args.queries, args.seed)
    timer = Timer()
    manifest = build_shards(args.backend, dataset, args.out, args.shards, queries=queries)
    build_time = timer.elapsed()
    ranges = ", ".join(f"[{shard['lo']}, {shard['hi']})" for shard in manifest["shards"])
    print(
        f"built {manifest['num_shards']} {args.backend} shard(s) over "
        f"{manifest['num_objects']} objects in {build_time:.2f}s: {ranges}"
    )
    print(f"saved sharded index with {len(queries)} queries to {args.out}")
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    with ShardedEngine(args.index, mp_context=args.mp_context) as engine:
        payloads = engine.load_queries()
        if not payloads:
            print(f"sharded index {args.index} holds no stored queries", file=sys.stderr)
            return 2
        name = engine.backend_name
        tau = args.tau if args.tau is not None else engine.default_tau()
        queries = [
            Query(
                backend=name,
                payload=payload,
                tau=tau,
                chain_length=args.chain_length,
                algorithm=args.algorithm,
            )
            for payload in payloads
        ]
        report, _responses = run_bench(engine, queries, repeat=args.repeat)
        stats = engine.stats.snapshot()
        payload = {
            "backend": name,
            "tau": tau,
            "algorithm": args.algorithm,
            "num_shards": engine.num_shards,
            "bench": report.to_dict(),
            "sharded_stats": stats,
            "worker_stats": engine.worker_stats(),
        }
        print(
            f"[{name}] {engine.num_shards} shard(s)  "
            f"{report.num_queries} queries  {report.throughput_qps:.1f} q/s  "
            f"p50 {report.p50_ms:.2f} ms  p95 {report.p95_ms:.2f} ms  "
            f"merge {stats['avg_merge_time_ms']:.3f} ms/query"
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.out}")
    return 0


def _mutate(args: argparse.Namespace) -> int:
    """Shared driver of the ``upsert`` / ``delete`` / ``compact`` commands."""
    from repro.engine.wire import WireFormatError

    sharded = os.path.exists(os.path.join(args.index, SHARDS_MANIFEST_NAME))
    if sharded:
        engine: object = ShardedEngine(args.index, mp_context=args.mp_context)
        backend_name = engine.backend_name
        close = engine.close

        def persist() -> None:
            engine.flush()

    else:
        engine = SearchEngine()
        container = engine.load_index(args.index)
        backend_name = container.backend.name
        close = None

        def persist() -> None:
            engine.save_index(backend_name, args.index, queries=container.queries)

    try:
        if args.command == "upsert":
            backend = get_backend(backend_name)
            try:
                record = backend.record_from_wire(json.loads(args.record))
            except (json.JSONDecodeError, WireFormatError, ValueError) as exc:
                print(f"bad --record for backend {backend_name!r}: {exc}", file=sys.stderr)
                return 2
            assigned = engine.upsert(backend_name, record, args.id)
            print(f"[{backend_name}] upserted id {assigned}")
        elif args.command == "delete":
            deleted = engine.delete(backend_name, args.id)
            if not deleted:
                print(f"[{backend_name}] id {args.id} was not live", file=sys.stderr)
                return 1
            print(f"[{backend_name}] deleted id {args.id}")
        else:
            try:
                summary = engine.compact(backend_name)
            except ValueError as exc:  # e.g. every record deleted
                print(f"[{backend_name}] compact failed: {exc}", file=sys.stderr)
                return 1
            summaries = summary if isinstance(summary, list) else [summary]
            failed = False
            for entry in summaries:
                shard = f"shard {entry['shard_id']} " if "shard_id" in entry else ""
                if entry.get("compacted"):
                    print(
                        f"[{backend_name}] {shard}compacted: folded "
                        f"{entry['folded_records']} delta record(s), dropped "
                        f"{entry['dropped_tombstones']} tombstone(s), "
                        f"{entry['num_live']} live object(s)"
                    )
                elif "error" in entry:
                    failed = True
                    print(
                        f"[{backend_name}] {shard}compact failed: {entry['error']}",
                        file=sys.stderr,
                    )
                else:
                    print(f"[{backend_name}] {shard}nothing to compact")
            if failed:
                persist()  # the untouched overlays are still worth saving
                return 1
        persist()
        info = engine.mutation_info(backend_name)
        print(
            f"  live {info['num_live']}  delta {info['delta_records']}  "
            f"tombstones {info['num_tombstones']}  next id {info['next_id']}"
        )
    finally:
        if close is not None:
            close()
    return 0


def _open_served_engine(args: argparse.Namespace):
    """A ShardedEngine for a sharded directory, a SearchEngine otherwise.

    With ``--wal-dir`` the opened engine is made durable before serving: a
    sharded index attaches one write-ahead log per shard worker, a plain
    container attaches a single ``<backend>.wal`` -- either way, existing
    logs are replayed (recovering acknowledged writes from a crash) and
    ``--auto-compact`` arms the background delta-folding policy.
    """
    wal_dir = getattr(args, "wal_dir", None)
    auto_compact = getattr(args, "auto_compact", False)
    replicas = getattr(args, "replicas", 1)
    if os.path.exists(os.path.join(args.index, SHARDS_MANIFEST_NAME)):
        return ShardedEngine(
            args.index,
            mp_context=args.mp_context,
            wal_dir=wal_dir,
            auto_compact=auto_compact,
            replicas=replicas,
        )
    if replicas > 1:
        raise SystemExit("--replicas > 1 needs a sharded index (see 'shard-build')")
    engine = SearchEngine(cache_size=args.cache_size)
    container = engine.load_index(args.index)
    if wal_dir is not None:
        backend_name = container.backend.name
        os.makedirs(wal_dir, exist_ok=True)
        replayed = engine.attach_wal(
            backend_name, os.path.join(wal_dir, f"{backend_name}.wal")
        )
        if replayed["replayed_batches"]:
            print(
                f"[{backend_name}] replayed {replayed['replayed_batches']} WAL "
                f"batch(es) up to seq {replayed['last_seq']}",
                flush=True,
            )
        if auto_compact:
            engine.enable_auto_compaction(backend_name)
    return engine


async def _serve_until_signalled(server, ready_file: str | None) -> None:
    await server.start()
    host, port = server.address
    print(f"serving {type(server.engine).__name__} on http://{host}:{port}", flush=True)
    if ready_file:
        # Written atomically so a poller never reads a half-written address.
        tmp = ready_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
        os.replace(tmp, ready_file)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            signal.signal(signum, lambda *_args: stop_event.set())
    await stop_event.wait()
    print("draining in-flight queries ...", flush=True)
    await server.stop()
    print("server stopped cleanly", flush=True)


def _serve(args: argparse.Namespace) -> int:
    from repro.engine.server import EngineServer, ServerConfig

    engine = _open_served_engine(args)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        trace=args.trace,
        trace_budget=args.trace_budget,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=args.slow_query_log,
        slow_query_max_mb=args.slow_query_max_mb,
        durability=args.durability,
        profile_hz=args.profile_hz,
        slo_latency_ms=args.slo_latency_ms,
    )
    server = EngineServer(engine, config, own_engine=True)
    asyncio.run(_serve_until_signalled(server, args.ready_file))
    return 0


def _wal_inspect(args: argparse.Namespace) -> int:
    """Summarise WAL files: batches, sequence numbers, torn-tail status."""
    from repro.engine.wal import WalCorruptionError, wal_summary

    status = 0
    for path in args.wal:
        try:
            summary = wal_summary(path)
        except FileNotFoundError:
            print(f"{path}: no such file", file=sys.stderr)
            status = 2
            continue
        except WalCorruptionError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 2
            continue
        if args.json:
            print(json.dumps(summary, indent=2))
            continue
        print(
            f"{summary['path']}: {summary['num_batches']} batch(es), "
            f"last seq {summary['last_seq']}, "
            f"{summary['valid_bytes']}/{summary['size_bytes']} bytes valid"
        )
        if summary["tail_error"] is not None:
            print(
                f"  tail: {summary['tail_error']} "
                f"({summary['discarded_bytes']} byte(s) would be discarded)"
            )
        for batch in summary["batches"]:
            print(
                f"  seq {batch['seq']:>6}  [{batch['backend']}] "
                f"{batch['num_ops']} op(s) "
                f"({batch['upserts']} upsert / {batch['deletes']} delete)  "
                f"at byte {batch['offset']} (+{batch['num_bytes']})"
            )
    return status


def _load_workload(args: argparse.Namespace) -> tuple[str, list, float | int]:
    """Backend name, stored payloads and threshold for one index directory."""
    shards_path = os.path.join(args.index, SHARDS_MANIFEST_NAME)
    if os.path.exists(shards_path):
        manifest = load_shards_manifest(args.index)
    else:
        with open(os.path.join(args.index, "manifest.json"), encoding="utf-8") as handle:
            manifest = json.load(handle)
    name = manifest["backend"]
    payloads = get_backend(name).load_queries(args.index)
    if not payloads:
        print(f"index {args.index} holds no stored queries", file=sys.stderr)
        raise SystemExit(2)
    tau = args.tau if args.tau is not None else manifest.get("default_tau")
    if tau is None and args.k is None:
        print(
            "the index manifest records no default tau; pass --tau or --k",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return name, payloads, tau


#: Request volume and concurrency ladder per load-bench profile.
LOAD_PROFILES = {
    "ci": dict(requests=160, concurrency=(1, 8)),
    "full": dict(requests=1000, concurrency=(1, 4, 8, 16)),
}


def _load_bench(args: argparse.Namespace) -> int:
    name, payloads, tau = _load_workload(args)
    if args.profile is not None:
        profile = LOAD_PROFILES[args.profile]
        num_requests = profile["requests"]
        levels = list(profile["concurrency"])
    else:
        num_requests = args.requests
        levels = [int(part) for part in args.concurrency.split(",")]
    repeat = max(1, -(-num_requests // len(payloads)))  # ceil to cover payloads
    requests = wire_requests(
        name,
        payloads,
        tau=None if args.k is not None else tau,
        k=args.k,
        chain_length=args.chain_length,
        algorithm=args.algorithm,
        repeat=repeat,
    )[:num_requests]

    results = {}
    ok = True
    for concurrency in levels:
        report = run_load_bench(
            args.url,
            requests,
            concurrency=concurrency,
            mode=args.mode,
            target_qps=args.rate,
            topk=args.k is not None,
            timeout=args.timeout,
        )
        results[str(concurrency)] = report.to_dict()
        ok = ok and report.num_ok > 0 and report.num_errors == 0
        print(
            f"[{name}] c={concurrency:<3} {report.achieved_qps:>8.1f} q/s  "
            f"p50 {report.p50_ms:>7.2f} ms  p95 {report.p95_ms:>7.2f} ms  "
            f"p99 {report.p99_ms:>7.2f} ms  batch {report.avg_batch_size:.2f}  "
            f"ok {report.num_ok}/{report.num_requests}"
            + (f"  rejected {report.num_rejected}" if report.num_rejected else "")
        )
    if len(levels) > 1:
        base = results[str(levels[0])]["achieved_qps"]
        peak = max(entry["achieved_qps"] for entry in results.values())
        if base:
            print(f"concurrency speedup: {peak / base:.2f}x over c={levels[0]}")
    if args.out:
        payload = {
            "backend": name,
            "url": args.url,
            "mode": args.mode,
            "tau": tau,
            "k": args.k,
            "num_requests": num_requests,
            "concurrency": results,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")
    if not ok:
        print("load-bench FAILED: errors or zero successful requests", file=sys.stderr)
    return 0 if ok else 1


def _print_span(node: dict, depth: int, total_ms: float) -> None:
    share = 100.0 * node.get("duration_ms", 0.0) / total_ms if total_ms else 0.0
    print(
        f"  {'  ' * depth}{node.get('name', '?'):<{32 - 2 * depth}}"
        f"{node.get('duration_ms', 0.0):>10.3f} ms  {share:5.1f}%"
        f"  @{node.get('start_ms', 0.0):.3f}"
    )
    for child in node.get("children", ()):
        _print_span(child, depth + 1, total_ms)


def _stats(args: argparse.Namespace) -> int:
    from repro.engine.client import EngineClient

    with EngineClient(args.url, timeout=args.timeout) as client:
        if args.metrics:
            sys.stdout.write(client.metrics())
            return 0
        print(json.dumps(client.stats(), indent=2))
    return 0


def _profile(args: argparse.Namespace) -> int:
    from repro.engine.client import EngineClient

    with EngineClient(args.url, timeout=args.timeout) as client:
        payload = client.profile(seconds=args.seconds)
    if args.folded:
        for line in payload.get("folded", []):
            print(line)
        return 0
    profile = payload.get("profile", {})
    roles = profile.get("roles", {})
    total = sum(role.get("samples", 0) for role in roles.values())
    window = profile.get("duration_s", 0.0)
    print(
        f"profile: {total} sample(s) at {profile.get('hz', 0.0):g} Hz "
        f"over {window:.1f}s across {len(roles)} role(s)"
    )
    for role, share in sorted(payload.get("attribution", {}).items(), key=lambda kv: -kv[1]):
        print(f"  {role:<16}{100.0 * share:5.1f}%")
    top = payload.get("top", [])
    if not top:
        print("no samples recorded yet (is the profiler armed? try --seconds 2)")
        return 1
    print(f"top {len(top)} self-time frame(s):")
    for entry in top:
        print(
            f"  {100.0 * entry['share']:5.1f}%  {entry['samples']:>6}  "
            f"[{entry['role']}] {entry['frame']}"
        )
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.engine.client import EngineClient

    with EngineClient(args.url, timeout=args.timeout) as client:
        traces = client.traces().get("traces", [])
    if not traces:
        print(
            "the server recorded no traces yet; query it with the X-Trace: 1 "
            "header, or restart it with --trace / --slow-query-ms",
            file=sys.stderr,
        )
        return 1
    for doc in traces[: args.last]:
        total_ms = doc.get("duration_ms", 0.0)
        print(f"trace {doc.get('trace_id', '?')}  {doc.get('name', '?')}  {total_ms:.3f} ms")
        for node in doc.get("spans", ()):
            _print_span(node, 0, total_ms)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Unified multi-domain similarity search engine",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-index", help="build and save an index container")
    build.add_argument("--backend", choices=available_backends(), required=True)
    build.add_argument("--out", required=True, help="container directory to create")
    build.add_argument("--size", type=int, default=2000, help="number of data objects")
    build.add_argument("--queries", type=int, default=20, help="stored sample queries")
    build.add_argument("--seed", type=int, default=0)
    build.set_defaults(func=_build_index)

    query = commands.add_parser("query", help="answer one stored query")
    query.add_argument("--index", required=True, help="container directory")
    query.add_argument("--query", type=int, default=0, help="stored query number")
    query.add_argument("--tau", type=_parse_tau, default=None)
    query.add_argument("--k", type=int, default=None)
    query.add_argument("--chain-length", type=int, default=None)
    query.add_argument("--algorithm", default="ring")
    query.set_defaults(func=_query)

    bench = commands.add_parser("bench", help="measure batch-serving throughput")
    bench.add_argument("--index", required=True, help="container directory")
    bench.add_argument("--tau", type=_parse_tau, default=None)
    bench.add_argument("--chain-length", type=int, default=None)
    bench.add_argument("--algorithm", default="ring")
    bench.add_argument("--repeat", type=int, default=1, help="workload repetitions")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--out", default=None, help="write the JSON report here")
    bench.set_defaults(func=_bench)

    shards = commands.add_parser(
        "build-shards", help="build and save a sharded (multi-container) index"
    )
    shards.add_argument("--backend", choices=available_backends(), required=True)
    shards.add_argument("--out", required=True, help="sharded index directory")
    shards.add_argument("--shards", type=int, default=4, help="number of id-range shards")
    shards.add_argument("--size", type=int, default=2000, help="number of data objects")
    shards.add_argument("--queries", type=int, default=20, help="stored sample queries")
    shards.add_argument("--seed", type=int, default=0)
    shards.set_defaults(func=_build_shards)

    serve = commands.add_parser(
        "serve-bench", help="serve a sharded index on worker processes and measure it"
    )
    serve.add_argument("--index", required=True, help="sharded index directory")
    serve.add_argument("--tau", type=_parse_tau, default=None)
    serve.add_argument("--chain-length", type=int, default=None)
    serve.add_argument("--algorithm", default="ring")
    serve.add_argument("--repeat", type=int, default=3, help="workload repetitions")
    serve.add_argument("--mp-context", default=None, choices=["fork", "spawn", "forkserver"])
    serve.add_argument("--out", default=None, help="write the JSON report here")
    serve.set_defaults(func=_serve_bench)

    http_serve = commands.add_parser(
        "serve", help="serve an index (plain or sharded) over HTTP/JSON"
    )
    http_serve.add_argument(
        "--index", required=True, help="index container or sharded index directory"
    )
    http_serve.add_argument("--host", default="127.0.0.1")
    http_serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    http_serve.add_argument(
        "--max-batch", type=int, default=16, help="micro-batch coalescing limit"
    )
    http_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch window in ms"
    )
    http_serve.add_argument(
        "--max-pending", type=int, default=256, help="admission-control bound (429 above)"
    )
    http_serve.add_argument(
        "--cache-size", type=int, default=0, help="result-cache size (plain containers)"
    )
    http_serve.add_argument(
        "--mp-context", default=None, choices=["fork", "spawn", "forkserver"]
    )
    http_serve.add_argument(
        "--ready-file",
        default=None,
        help="write 'host port' here once listening (for scripted startup)",
    )
    http_serve.add_argument(
        "--trace",
        action="store_true",
        help="record a span timeline for every query (see /debug/traces)",
    )
    http_serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="log queries slower than this many ms end-to-end (0 logs all)",
    )
    http_serve.add_argument(
        "--slow-query-log",
        default=None,
        help="append slow-query JSON lines to this file (default: in-memory ring only)",
    )
    http_serve.add_argument(
        "--slow-query-max-mb",
        type=float,
        default=None,
        help="rotate the slow-query log file once it reaches this many MB "
        "(a bounded number of rotated files is kept)",
    )
    http_serve.add_argument(
        "--trace-budget",
        type=float,
        default=1.0,
        help="fraction of ordinary traces the tail sampler retains (slow and "
        "errored traces are always kept); 1.0 keeps everything",
    )
    http_serve.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        help="arm a continuous sampling profiler at this rate (server thread "
        "and every shard worker); snapshots via /debug/profile",
    )
    http_serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=None,
        help="latency objective for the SLO burn-rate monitors (default: "
        "errors only)",
    )
    http_serve.add_argument(
        "--wal-dir",
        default=None,
        help="attach (and replay) write-ahead logs in this directory; mutations "
        "are fsync'd before they are acknowledged",
    )
    http_serve.add_argument(
        "--durability",
        choices=["memory", "wal"],
        default=None,
        help="ack level for mutations that do not name one "
        "(default: 'wal' when a WAL is attached)",
    )
    http_serve.add_argument(
        "--auto-compact",
        action="store_true",
        help="fold the delta store into a rebuilt index in the background "
        "once scan cost crosses over (checkpoints + truncates the WAL)",
    )
    http_serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="worker replicas per shard (sharded indexes only; > 1 requires "
        "--wal-dir): reads fail over between replicas, dead replicas are "
        "respawned and caught up from the WAL in the background",
    )
    http_serve.set_defaults(func=_serve)

    wal_inspect = commands.add_parser(
        "wal-inspect", help="summarise write-ahead log files without replaying them"
    )
    wal_inspect.add_argument("wal", nargs="+", help="WAL file path(s)")
    wal_inspect.add_argument(
        "--json", action="store_true", help="print the raw JSON summaries"
    )
    wal_inspect.set_defaults(func=_wal_inspect)

    load = commands.add_parser(
        "load-bench", help="drive a running server and record QPS + latency percentiles"
    )
    load.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8080")
    load.add_argument(
        "--index", required=True, help="index directory the server was started from"
    )
    load.add_argument("--tau", type=_parse_tau, default=None)
    load.add_argument("--k", type=int, default=None, help="run the top-k endpoint instead")
    load.add_argument("--chain-length", type=int, default=None)
    load.add_argument("--algorithm", default="ring")
    load.add_argument(
        "--profile",
        choices=sorted(LOAD_PROFILES),
        default=None,
        help="preset request volume + concurrency ladder (overrides --requests/--concurrency)",
    )
    load.add_argument("--requests", type=int, default=200, help="requests per level")
    load.add_argument(
        "--concurrency", default="1,8", help="comma-separated concurrency levels"
    )
    load.add_argument("--mode", choices=["closed", "open"], default="closed")
    load.add_argument(
        "--rate", type=float, default=None, help="open-loop dispatch rate (required for open)"
    )
    load.add_argument("--timeout", type=float, default=30.0)
    load.add_argument("--out", default=None, help="write the JSON report here")
    load.set_defaults(func=_load_bench)

    upsert = commands.add_parser(
        "upsert", help="insert or overwrite one record in an index on disk"
    )
    upsert.add_argument("--index", required=True, help="container or sharded directory")
    upsert.add_argument(
        "--record",
        required=True,
        help="the record in the backend's JSON wire form "
        "(0/1 list, token list, \"string\", or {vertices, edges})",
    )
    upsert.add_argument(
        "--id", type=int, default=None, help="overwrite this id (default: append a new one)"
    )
    upsert.add_argument("--mp-context", default=None, choices=["fork", "spawn", "forkserver"])
    upsert.set_defaults(func=_mutate)

    delete = commands.add_parser("delete", help="delete one record from an index on disk")
    delete.add_argument("--index", required=True, help="container or sharded directory")
    delete.add_argument("--id", type=int, required=True, help="the id to remove")
    delete.add_argument("--mp-context", default=None, choices=["fork", "spawn", "forkserver"])
    delete.set_defaults(func=_mutate)

    compact = commands.add_parser(
        "compact", help="fold an index's delta store into a rebuilt main index"
    )
    compact.add_argument("--index", required=True, help="container or sharded directory")
    compact.add_argument("--mp-context", default=None, choices=["fork", "spawn", "forkserver"])
    compact.set_defaults(func=_mutate)

    stats = commands.add_parser("stats", help="dump a running server's stats or metrics")
    stats.add_argument("--url", required=True, help="server base URL")
    stats.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus text exposition (/metrics) instead of /stats JSON",
    )
    stats.add_argument("--timeout", type=float, default=10.0)
    stats.set_defaults(func=_stats)

    trace = commands.add_parser(
        "trace", help="pretty-print a running server's recent request traces"
    )
    trace.add_argument("--url", required=True, help="server base URL")
    trace.add_argument("--last", type=int, default=1, help="number of traces to show")
    trace.add_argument("--timeout", type=float, default=10.0)
    trace.set_defaults(func=_trace)

    profile = commands.add_parser(
        "profile", help="print a running server's sampling-profiler snapshot"
    )
    profile.add_argument("--url", required=True, help="server base URL")
    profile.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="measure a fresh window of this length instead of the "
        "continuous profiler's whole-lifetime snapshot",
    )
    profile.add_argument(
        "--folded",
        action="store_true",
        help="print raw flamegraph-collapsed stacks (role;frame;... count)",
    )
    profile.add_argument("--timeout", type=float, default=60.0)
    profile.set_defaults(func=_profile)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
