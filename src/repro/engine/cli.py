"""Command-line front end: ``python -m repro.engine <command>``.

Five subcommands make the engine drivable end-to-end without writing code:

* ``build-index`` -- generate a synthetic workload for one backend, build the
  dataset (and, for Hamming, the partition index) once, and save everything
  into an index container directory together with a sample query workload.
* ``query`` -- load a container and answer one stored query, either as a
  thresholded selection (``--tau``) or as a top-k search (``--k``).
* ``bench`` -- load a container, replay the stored workload sequentially and
  on a thread pool, verify both paths agree, and record throughput to a JSON
  report.
* ``build-shards`` -- like ``build-index``, but split the dataset into K
  id-range shards, each its own index container under one directory.
* ``serve-bench`` -- serve a sharded index on K worker processes, replay the
  stored workload pipelined across the shards, and report throughput,
  latency percentiles, and per-shard/merge statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.common.stats import Timer
from repro.engine.api import Query
from repro.engine.backend import available_backends
from repro.engine.bench import run_bench
from repro.engine.executor import SearchEngine
from repro.engine.sharding import ShardedEngine, build_shards


def _parse_tau(text: str) -> float | int:
    """Keep integral thresholds as ints: for ``sets``, ``--tau 1`` must mean
    overlap >= 1, not Jaccard 1.0 (exact equality)."""
    try:
        return int(text)
    except ValueError:
        return float(text)


def _build_index(args: argparse.Namespace) -> int:
    engine = SearchEngine()
    backend = engine.backend(args.backend)
    dataset, queries = backend.make_workload(args.size, args.queries, args.seed)
    timer = Timer()
    engine.add_dataset(args.backend, dataset)
    build_time = timer.elapsed()
    manifest = engine.save_index(args.backend, args.out, queries=queries)
    print(f"built {args.backend} store in {build_time:.2f}s: {manifest['descriptor']}")
    print(f"saved index container with {len(queries)} queries to {args.out}")
    return 0


def _load(engine: SearchEngine, directory: str):
    container = engine.load_index(directory)
    if not container.queries:
        print(f"container {directory} holds no stored queries", file=sys.stderr)
        raise SystemExit(2)
    return container


def _query(args: argparse.Namespace) -> int:
    engine = SearchEngine()
    container = _load(engine, args.index)
    name = container.backend.name
    if not 0 <= args.query < len(container.queries):
        print(f"--query must be in [0, {len(container.queries) - 1}]", file=sys.stderr)
        return 2
    payload = container.queries[args.query]
    tau = args.tau if args.tau is not None else (
        None if args.k is not None else container.backend.default_tau(container.store)
    )
    query = Query(
        backend=name,
        payload=payload,
        tau=tau,
        k=args.k,
        chain_length=args.chain_length,
        algorithm=args.algorithm,
    )
    response = engine.search(query)
    kind = f"top-{args.k}" if args.k is not None else f"tau={tau}"
    print(
        f"[{name}] {kind} algorithm={args.algorithm}: "
        f"{response.num_results} result(s), {response.num_candidates} candidate(s), "
        f"{response.engine_time * 1000.0:.2f} ms"
    )
    if response.scores is not None:
        for obj_id, score in zip(response.ids, response.scores):
            print(f"  id={obj_id}  score={score:g}")
    else:
        print(f"  ids: {response.ids[:20]}{' ...' if response.num_results > 20 else ''}")
    return 0


def _bench(args: argparse.Namespace) -> int:
    engine = SearchEngine(cache_size=0)  # throughput without result-cache effects
    container = _load(engine, args.index)
    name = container.backend.name
    tau = args.tau if args.tau is not None else container.backend.default_tau(container.store)
    queries = [
        Query(
            backend=name,
            payload=payload,
            tau=tau,
            chain_length=args.chain_length,
            algorithm=args.algorithm,
        )
        for payload in container.queries
    ] * args.repeat
    # Warm the searcher cache so both paths measure pure serving.
    engine.search(queries[0])
    engine.reset_stats()

    timer = Timer()
    sequential = engine.search_batch(queries)
    sequential_s = timer.restart()
    parallel = engine.search_batch(queries, parallel=True, max_workers=args.workers)
    parallel_s = timer.elapsed()
    agree = all(sorted(a.ids) == sorted(b.ids) for a, b in zip(sequential, parallel))
    report = {
        "backend": name,
        "tau": tau,
        "algorithm": args.algorithm,
        "num_queries": len(queries),
        "workers": args.workers,
        "sequential_seconds": sequential_s,
        "parallel_seconds": parallel_s,
        "sequential_qps": len(queries) / sequential_s if sequential_s else 0.0,
        "parallel_qps": len(queries) / parallel_s if parallel_s else 0.0,
        "results_agree": agree,
        "stats": engine.stats.snapshot(),
    }
    print(
        f"[{name}] {len(queries)} queries  sequential {report['sequential_qps']:.1f} q/s"
        f"  parallel({args.workers}) {report['parallel_qps']:.1f} q/s"
        f"  agree={agree}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.out}")
    return 0 if agree else 1


def _build_shards(args: argparse.Namespace) -> int:
    engine = SearchEngine()
    backend = engine.backend(args.backend)
    dataset, queries = backend.make_workload(args.size, args.queries, args.seed)
    timer = Timer()
    manifest = build_shards(args.backend, dataset, args.out, args.shards, queries=queries)
    build_time = timer.elapsed()
    ranges = ", ".join(f"[{shard['lo']}, {shard['hi']})" for shard in manifest["shards"])
    print(
        f"built {manifest['num_shards']} {args.backend} shard(s) over "
        f"{manifest['num_objects']} objects in {build_time:.2f}s: {ranges}"
    )
    print(f"saved sharded index with {len(queries)} queries to {args.out}")
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    with ShardedEngine(args.index, mp_context=args.mp_context) as engine:
        payloads = engine.load_queries()
        if not payloads:
            print(f"sharded index {args.index} holds no stored queries", file=sys.stderr)
            return 2
        name = engine.backend_name
        tau = args.tau if args.tau is not None else engine.default_tau()
        queries = [
            Query(
                backend=name,
                payload=payload,
                tau=tau,
                chain_length=args.chain_length,
                algorithm=args.algorithm,
            )
            for payload in payloads
        ]
        report, _responses = run_bench(engine, queries, repeat=args.repeat)
        stats = engine.stats.snapshot()
        payload = {
            "backend": name,
            "tau": tau,
            "algorithm": args.algorithm,
            "num_shards": engine.num_shards,
            "bench": report.to_dict(),
            "sharded_stats": stats,
            "worker_stats": engine.worker_stats(),
        }
        print(
            f"[{name}] {engine.num_shards} shard(s)  "
            f"{report.num_queries} queries  {report.throughput_qps:.1f} q/s  "
            f"p50 {report.p50_ms:.2f} ms  p95 {report.p95_ms:.2f} ms  "
            f"merge {stats['avg_merge_time_ms']:.3f} ms/query"
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Unified multi-domain similarity search engine",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-index", help="build and save an index container")
    build.add_argument("--backend", choices=available_backends(), required=True)
    build.add_argument("--out", required=True, help="container directory to create")
    build.add_argument("--size", type=int, default=2000, help="number of data objects")
    build.add_argument("--queries", type=int, default=20, help="stored sample queries")
    build.add_argument("--seed", type=int, default=0)
    build.set_defaults(func=_build_index)

    query = commands.add_parser("query", help="answer one stored query")
    query.add_argument("--index", required=True, help="container directory")
    query.add_argument("--query", type=int, default=0, help="stored query number")
    query.add_argument("--tau", type=_parse_tau, default=None)
    query.add_argument("--k", type=int, default=None)
    query.add_argument("--chain-length", type=int, default=None)
    query.add_argument("--algorithm", default="ring")
    query.set_defaults(func=_query)

    bench = commands.add_parser("bench", help="measure batch-serving throughput")
    bench.add_argument("--index", required=True, help="container directory")
    bench.add_argument("--tau", type=_parse_tau, default=None)
    bench.add_argument("--chain-length", type=int, default=None)
    bench.add_argument("--algorithm", default="ring")
    bench.add_argument("--repeat", type=int, default=1, help="workload repetitions")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--out", default=None, help="write the JSON report here")
    bench.set_defaults(func=_bench)

    shards = commands.add_parser(
        "build-shards", help="build and save a sharded (multi-container) index"
    )
    shards.add_argument("--backend", choices=available_backends(), required=True)
    shards.add_argument("--out", required=True, help="sharded index directory")
    shards.add_argument("--shards", type=int, default=4, help="number of id-range shards")
    shards.add_argument("--size", type=int, default=2000, help="number of data objects")
    shards.add_argument("--queries", type=int, default=20, help="stored sample queries")
    shards.add_argument("--seed", type=int, default=0)
    shards.set_defaults(func=_build_shards)

    serve = commands.add_parser(
        "serve-bench", help="serve a sharded index on worker processes and measure it"
    )
    serve.add_argument("--index", required=True, help="sharded index directory")
    serve.add_argument("--tau", type=_parse_tau, default=None)
    serve.add_argument("--chain-length", type=int, default=None)
    serve.add_argument("--algorithm", default="ring")
    serve.add_argument("--repeat", type=int, default=3, help="workload repetitions")
    serve.add_argument("--mp-context", default=None, choices=["fork", "spawn", "forkserver"])
    serve.add_argument("--out", default=None, help="write the JSON report here")
    serve.set_defaults(func=_serve_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
