"""A unified multi-domain query engine over the paper's four case studies.

The per-domain packages (:mod:`repro.hamming`, :mod:`repro.sets`,
:mod:`repro.strings`, :mod:`repro.graphs`) each expose their own dataset and
searcher classes; this subsystem puts one serving layer on top of them:

* :mod:`repro.engine.backend` -- the :class:`Backend` protocol and a registry
  mapping domain names to adapters.
* :mod:`repro.engine.backends` -- the four registered adapters.
* :mod:`repro.engine.api` -- the uniform :class:`Query` / :class:`Response`
  dataclasses.
* :mod:`repro.engine.executor` -- :class:`SearchEngine`: searcher reuse, an
  LRU result cache, batched and thread-pooled execution, latency statistics.
* :mod:`repro.engine.topk` -- top-k search via adaptive threshold escalation.
* :mod:`repro.engine.persistence` -- build-once/save/load index containers.
* :mod:`repro.engine.sharding` -- :class:`ShardedEngine`: id-range shards
  served by one worker process each, with exact threshold/top-k merging.
* :mod:`repro.engine.bench` -- the latency/throughput harness behind the
  benchmark suite and the CI regression gate.
* :mod:`repro.engine.cli` -- ``python -m repro.engine`` with ``build-index``,
  ``query``, ``bench``, ``build-shards`` and ``serve-bench`` subcommands.

See ENGINE.md at the repository root for the architecture walkthrough.
"""

from repro.engine.api import Query, Response
from repro.engine.backend import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.bench import BenchReport, run_bench
from repro.engine.executor import EngineStats, SearchEngine
from repro.engine.persistence import Container, load_container, save_container
from repro.engine.sharding import ShardedEngine, ShardedStats, build_shards
from repro.engine.topk import run_topk

__all__ = [
    "Backend",
    "BenchReport",
    "Container",
    "EngineStats",
    "Query",
    "Response",
    "SearchEngine",
    "ShardedEngine",
    "ShardedStats",
    "available_backends",
    "build_shards",
    "get_backend",
    "load_container",
    "register_backend",
    "run_bench",
    "run_topk",
    "save_container",
]
