"""A unified multi-domain query engine over the paper's four case studies.

The per-domain packages (:mod:`repro.hamming`, :mod:`repro.sets`,
:mod:`repro.strings`, :mod:`repro.graphs`) each expose their own dataset and
searcher classes; this subsystem puts one serving layer on top of them:

* :mod:`repro.engine.backend` -- the :class:`Backend` protocol and a registry
  mapping domain names to adapters.
* :mod:`repro.engine.backends` -- the four registered adapters.
* :mod:`repro.engine.api` -- the uniform :class:`Query` / :class:`Response`
  dataclasses.
* :mod:`repro.engine.executor` -- :class:`SearchEngine`: searcher reuse, an
  LRU result cache, batched and thread-pooled execution, latency statistics.
* :mod:`repro.engine.topk` -- top-k search via adaptive threshold escalation.
* :mod:`repro.engine.mutation` -- :class:`DeltaStore`: the delta/tombstone
  overlay behind online ``upsert`` / ``delete`` / ``compact``.
* :mod:`repro.engine.persistence` -- build-once/save/load index containers;
  every write is atomic (temp + fsync + rename).
* :mod:`repro.engine.wal` -- :class:`WriteAheadLog`: checksummed,
  length-prefixed batch records with prefix-validity recovery, plus
  :class:`AutoCompactionPolicy`, the delta-vs-index cost crossover behind
  background auto-compaction.
* :mod:`repro.engine.sharding` -- :class:`ShardedEngine`: id-range shards
  served by one worker process each, with exact threshold/top-k merging.
* :mod:`repro.engine.bench` -- the latency/throughput harness behind the
  benchmark suite and the CI regression gate, plus the open/closed-loop
  network load generator.
* :mod:`repro.engine.wire` -- the schema-versioned JSON wire format of the
  network serving layer.
* :mod:`repro.engine.server` -- :class:`EngineServer`: a stdlib-only asyncio
  HTTP/1.1 front-end with micro-batch coalescing, admission control and
  graceful drain over either engine.
* :mod:`repro.engine.client` -- the blocking :class:`EngineClient` and the
  :func:`asearch` coroutine.
* :mod:`repro.engine.cli` -- ``python -m repro.engine`` with ``build-index``,
  ``query``, ``bench``, ``build-shards``, ``serve-bench``, ``serve``,
  ``load-bench``, ``upsert``, ``delete``, ``compact`` and ``wal-inspect``
  subcommands.

Mutations flow through the batched ``mutate(backend, ops)`` entry point
(``upsert``/``delete`` are one-op shims) on the engine, the sharded
engine, ``POST /mutate`` and the client alike; attach a write-ahead log
(``attach_wal`` / ``serve --wal-dir``) and each batch is fsync'd before
it is acknowledged, then replayed on the next load.

See ENGINE.md at the repository root for the architecture walkthrough.
"""

from repro.engine.api import Query, Response
from repro.engine.backend import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.bench import (
    BenchReport,
    LoadReport,
    run_bench,
    run_load_bench,
    wire_requests,
)
from repro.engine.client import (
    EngineClient,
    EngineClientError,
    RequestError,
    ServerBusyError,
    ServerUnavailableError,
    WireResponse,
    asearch,
)
from repro.engine.executor import EngineStats, SearchEngine
from repro.engine.mutation import DeltaStore
from repro.engine.persistence import (
    Container,
    atomic_write_json,
    load_container,
    save_container,
)
from repro.engine.server import EngineServer, ServerConfig, ServerThread
from repro.engine.sharding import (
    ShardedEngine,
    ShardedStats,
    ShardWorkerError,
    build_shards,
)
from repro.engine.topk import run_topk
from repro.engine.wal import (
    DURABILITY_LEVELS,
    AutoCompactionPolicy,
    WalBatch,
    WalCorruptionError,
    WriteAheadLog,
    wal_summary,
)
from repro.engine.wire import WIRE_SCHEMA_VERSION, WireFormatError

__all__ = [
    "AutoCompactionPolicy",
    "Backend",
    "BenchReport",
    "Container",
    "DURABILITY_LEVELS",
    "DeltaStore",
    "EngineClient",
    "EngineClientError",
    "EngineServer",
    "EngineStats",
    "LoadReport",
    "Query",
    "RequestError",
    "Response",
    "SearchEngine",
    "ServerBusyError",
    "ServerConfig",
    "ServerThread",
    "ServerUnavailableError",
    "ShardWorkerError",
    "ShardedEngine",
    "ShardedStats",
    "WIRE_SCHEMA_VERSION",
    "WalBatch",
    "WalCorruptionError",
    "WireFormatError",
    "WireResponse",
    "WriteAheadLog",
    "asearch",
    "atomic_write_json",
    "available_backends",
    "build_shards",
    "get_backend",
    "load_container",
    "register_backend",
    "run_bench",
    "run_load_bench",
    "run_topk",
    "save_container",
    "wal_summary",
    "wire_requests",
]
