"""The JSON wire format of the network serving layer.

Requests and responses travelling between :mod:`repro.engine.client` and
:mod:`repro.engine.server` are schema-versioned JSON objects.  A request
body is the wire form of one :class:`repro.engine.api.Query`::

    {
      "schema_version": 1,            # optional; rejected when unsupported
      "backend": "hamming",           # registered backend name
      "payload": [0, 1, 0, ...],      # domain payload, via Backend.payload_to_wire
      "tau": 32,                      # threshold (int/float distinction preserved)
      "k": 5,                         # top-k result count (/search/topk only)
      "chain_length": null,
      "algorithm": "ring"
    }

and a response body is the wire form of one :class:`Response` plus serving
metadata (the size of the coalesced micro-batch the query rode in).  Domain
payloads cross the wire through ``Backend.payload_to_wire`` /
``payload_from_wire``: token-id lists and strings are JSON-native, binary
vectors become 0/1 integer lists, graphs become ``{vertices, edges}``
objects.  JSON keeps the int/float distinction for ``tau``, which is
semantic for the sets backend (int = overlap, float = Jaccard).

Mutations use the same conventions.  The batched ``POST /mutate`` carries::

    {
      "schema_version": 2,
      "backend": "sets",
      "ops": [{"op": "upsert", "record": [...], "id": 7},
              {"op": "delete", "id": 3}],
      "durability": "wal"               # optional: "memory" | "wal"
    }

(see :func:`encode_mutate` / :func:`decode_mutate`); the response reports
per-op results plus the durability level and WAL sequence number the batch
was acknowledged at.  The legacy one-op endpoints remain: ``POST /upsert``
carries ``{backend, record, id?}`` (the record in the backend's wire form),
``POST /delete`` carries ``{backend, id}`` and ``POST /compact`` an
optional ``{backend}``; see :func:`decode_upsert` / :func:`decode_delete`
/ :func:`decode_compact`.

Schema versioning: version 2 added ``/mutate`` and the ``durability``
field; version 3 added the read-your-writes ``session`` token -- a
``"shard:seq,shard:seq"`` rendering of the ``wal_seq`` map a mutation was
acknowledged at (see :func:`format_session` / :func:`parse_session`),
carried on queries so a replicated server can skip replicas that have not
caught up with the caller's own writes.  Each version's bodies are a
strict subset of the next version's semantics, so servers accept all of
them (:data:`SUPPORTED_WIRE_SCHEMA_VERSIONS`) and old clients keep
working unchanged.

Every malformed input raises :class:`WireFormatError`, which the server
maps to HTTP 400 with the message in the body -- clients see *why* the
request was rejected instead of a stack trace deep inside a backend.
"""

from __future__ import annotations

from typing import Any

from repro.engine.api import Query, Response
from repro.engine.backend import available_backends, get_backend

#: Version of the request/response JSON schema (bump on incompatible changes).
WIRE_SCHEMA_VERSION = 3

#: Versions this server still decodes (each is a subset of the next).
SUPPORTED_WIRE_SCHEMA_VERSIONS = frozenset({1, 2, 3})

#: Durability levels a mutation request may ask for.
WIRE_DURABILITY_LEVELS = ("memory", "wal")


class WireFormatError(ValueError):
    """A request body that cannot be decoded into a valid :class:`Query`."""


def format_session(wal_seqs: Any) -> str | None:
    """Render a mutation's ``wal_seq`` map as a session token.

    The replicated engine acknowledges a batch with ``{"shard": seq}``
    (one entry per touched shard); the token is the comma-joined
    ``shard:seq`` rendering, stable under merging.  Returns None when
    there is nothing durable to wait for (an unsharded or WAL-less ack).
    """
    if not isinstance(wal_seqs, dict):
        return None
    parts = []
    for shard, seq in wal_seqs.items():
        if seq is None:
            continue
        parts.append((int(shard), int(seq)))
    if not parts:
        return None
    return ",".join(f"{shard}:{seq}" for shard, seq in sorted(parts))


def parse_session(token: str | None) -> dict[int, int]:
    """Decode a session token into its ``{shard: seq}`` floor map.

    Tolerant by design: a malformed token (or fragment) is treated as no
    constraint rather than an error -- read-your-writes is a routing hint,
    and a garbled hint must never turn a valid query into a 400.
    """
    floors: dict[int, int] = {}
    if not token or not isinstance(token, str):
        return floors
    for part in token.split(","):
        shard, _sep, seq = part.partition(":")
        try:
            shard_id, floor = int(shard), int(seq)
        except ValueError:
            continue
        if shard_id < 0 or floor <= 0:
            continue  # no real shard/seq is negative; a 0 floor is no floor
        floors[shard_id] = max(floors.get(shard_id, 0), floor)
    return floors


def merge_session(*tokens: str | None) -> str | None:
    """Combine session tokens, keeping the highest floor per shard.

    A client that mutates twice must wait for the *later* of the two acks
    on every shard; merging the tokens keeps one compact cursor.
    """
    floors: dict[int, int] = {}
    for token in tokens:
        for shard, seq in parse_session(token).items():
            floors[shard] = max(floors.get(shard, 0), seq)
    if not floors:
        return None
    return ",".join(f"{shard}:{seq}" for shard, seq in sorted(floors.items()))


def _check_schema_version(body: dict) -> None:
    version = body.get("schema_version", WIRE_SCHEMA_VERSION)
    if version not in SUPPORTED_WIRE_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_WIRE_SCHEMA_VERSIONS))
        raise WireFormatError(
            f"unsupported wire schema {version!r} (this server speaks {supported})"
        )


def encode_query(query: Query) -> dict:
    """The JSON-serialisable wire form of one query (client side)."""
    backend = get_backend(query.backend)
    body: dict[str, Any] = {
        "schema_version": WIRE_SCHEMA_VERSION,
        "backend": query.backend,
        "payload": backend.payload_to_wire(query.payload),
        "algorithm": query.algorithm,
    }
    if query.tau is not None:
        body["tau"] = query.tau
    if query.k is not None:
        body["k"] = query.k
    if query.chain_length is not None:
        body["chain_length"] = query.chain_length
    if query.session is not None:
        body["session"] = query.session
    return body


def decode_query(body: Any) -> Query:
    """Decode a request body into a :class:`Query` (server side).

    Raises :class:`WireFormatError` for every malformed input: wrong JSON
    shape, unknown backend, undecodable payload, or parameters the
    :class:`Query` validator rejects (non-int ``k``, NaN ``tau``, ...).
    """
    if not isinstance(body, dict):
        raise WireFormatError("the request body must be a JSON object")
    _check_schema_version(body)
    backend_name = body.get("backend")
    if not isinstance(backend_name, str):
        raise WireFormatError("'backend' must be a backend name string")
    try:
        backend = get_backend(backend_name)
    except KeyError:
        raise WireFormatError(
            f"unknown backend {backend_name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    if "payload" not in body:
        raise WireFormatError("the request is missing 'payload'")
    try:
        payload = backend.payload_from_wire(body["payload"])
    except WireFormatError:
        raise
    except Exception as exc:
        raise WireFormatError(f"undecodable {backend_name!r} payload: {exc}") from exc
    algorithm = body.get("algorithm", "ring")
    if not isinstance(algorithm, str):
        raise WireFormatError("'algorithm' must be a string")
    session = body.get("session")
    if session is not None and not isinstance(session, str):
        raise WireFormatError("'session' must be a session token string")
    try:
        backend.check_algorithm(algorithm)
        query = Query(
            backend=backend_name,
            payload=payload,
            tau=body.get("tau"),
            k=body.get("k"),
            chain_length=body.get("chain_length"),
            algorithm=algorithm,
            session=session,
        )
        if query.tau is not None:
            # Domain-specific threshold semantics (e.g. sets: Jaccard in
            # (0, 1], overlap >= 1) are rejected here, at 400 time, instead
            # of surfacing as an obscure error deep inside a searcher.
            backend.validate_tau(query.tau)
        return query
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc


def _decode_backend(body: Any, required: bool = True) -> Any:
    """Resolve and validate the ``backend`` field of a mutation body."""
    if not isinstance(body, dict):
        raise WireFormatError("the request body must be a JSON object")
    _check_schema_version(body)
    backend_name = body.get("backend")
    if backend_name is None and not required:
        return None
    if not isinstance(backend_name, str):
        raise WireFormatError("'backend' must be a backend name string")
    try:
        backend = get_backend(backend_name)
    except KeyError:
        raise WireFormatError(
            f"unknown backend {backend_name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    if not backend.mutable:
        raise WireFormatError(f"backend {backend_name!r} does not support mutation")
    return backend


def _decode_object_id(body: dict, required: bool) -> int | None:
    obj_id = body.get("id")
    if obj_id is None:
        if required:
            raise WireFormatError("the request is missing 'id'")
        return None
    if isinstance(obj_id, bool) or not isinstance(obj_id, int) or obj_id < 0:
        raise WireFormatError(f"'id' must be a non-negative integer, got {obj_id!r}")
    return obj_id


def encode_upsert(backend_name: str, record: Any, obj_id: int | None = None) -> dict:
    """The wire form of one upsert (client side)."""
    backend = get_backend(backend_name)
    body: dict[str, Any] = {
        "schema_version": WIRE_SCHEMA_VERSION,
        "backend": backend_name,
        "record": backend.record_to_wire(record),
    }
    if obj_id is not None:
        body["id"] = obj_id
    return body


def decode_upsert(body: Any) -> tuple[str, Any, int | None]:
    """Decode a ``/upsert`` body into ``(backend, record, id)`` (server side)."""
    backend = _decode_backend(body)
    if "record" not in body:
        raise WireFormatError("the request is missing 'record'")
    try:
        record = backend.record_from_wire(body["record"])
    except WireFormatError:
        raise
    except Exception as exc:
        raise WireFormatError(f"undecodable {backend.name!r} record: {exc}") from exc
    return backend.name, record, _decode_object_id(body, required=False)


def encode_delete(backend_name: str, obj_id: int) -> dict:
    """The wire form of one delete (client side)."""
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "backend": backend_name,
        "id": obj_id,
    }


def decode_delete(body: Any) -> tuple[str, int]:
    """Decode a ``/delete`` body into ``(backend, id)`` (server side)."""
    backend = _decode_backend(body)
    return backend.name, _decode_object_id(body, required=True)


def encode_mutate(
    backend_name: str,
    ops: list[dict],
    durability: str | None = None,
) -> dict:
    """The wire form of one mutation batch (client side).

    Each op is ``{"op": "upsert", "record": <raw record>, "id": optional}``
    or ``{"op": "delete", "id": int}``; records are converted through the
    backend's wire codec here so callers pass domain-native objects.
    """
    backend = get_backend(backend_name)
    wire_ops = []
    for op in ops:
        kind = op.get("op") if isinstance(op, dict) else None
        if kind == "upsert":
            doc: dict[str, Any] = {"op": "upsert", "record": backend.record_to_wire(op["record"])}
            if op.get("id") is not None:
                doc["id"] = int(op["id"])
            wire_ops.append(doc)
        elif kind == "delete":
            wire_ops.append({"op": "delete", "id": int(op["id"])})
        else:
            raise ValueError(f"unknown mutation op {kind!r}")
    body: dict[str, Any] = {
        "schema_version": WIRE_SCHEMA_VERSION,
        "backend": backend_name,
        "ops": wire_ops,
    }
    if durability is not None:
        body["durability"] = durability
    return body


def decode_mutate(body: Any) -> tuple[str, list[dict], str | None]:
    """Decode a ``/mutate`` body into ``(backend, ops, durability)``.

    Ops come back in the engine's form (records decoded, explicit ids as
    ints); every malformed op raises :class:`WireFormatError` naming its
    position in the batch.
    """
    backend = _decode_backend(body)
    ops = body.get("ops")
    if not isinstance(ops, list) or not ops:
        raise WireFormatError("'ops' must be a non-empty list of mutation ops")
    decoded: list[dict] = []
    for position, doc in enumerate(ops):
        if not isinstance(doc, dict):
            raise WireFormatError(f"ops[{position}] must be a JSON object")
        kind = doc.get("op")
        if kind == "upsert":
            if "record" not in doc:
                raise WireFormatError(f"ops[{position}] is missing 'record'")
            try:
                record = backend.record_from_wire(doc["record"])
            except WireFormatError:
                raise
            except Exception as exc:
                raise WireFormatError(
                    f"ops[{position}]: undecodable {backend.name!r} record: {exc}"
                ) from exc
            obj_id = _decode_object_id(doc, required=False)
            decoded.append({"op": "upsert", "record": record, "id": obj_id})
        elif kind == "delete":
            decoded.append({"op": "delete", "id": _decode_object_id(doc, required=True)})
        else:
            raise WireFormatError(f"ops[{position}]: unknown mutation op {kind!r}")
    durability = body.get("durability")
    if durability is not None and durability not in WIRE_DURABILITY_LEVELS:
        accepted = ", ".join(WIRE_DURABILITY_LEVELS)
        raise WireFormatError(
            f"unknown durability {durability!r} (accepted: {accepted})"
        )
    return backend.name, decoded, durability


def decode_compact(body: Any) -> str | None:
    """Decode a ``/compact`` body into its optional backend name."""
    if body is None:
        return None
    backend = _decode_backend(body, required=False)
    return None if backend is None else backend.name


def encode_response(response: Response, batch_size: int = 1) -> dict:
    """The JSON-serialisable wire form of one response (server side).

    ``batch_size`` is the size of the micro-batch the query was coalesced
    into -- serving metadata the in-process :class:`Response` does not have.
    A span timeline is attached under ``"trace"`` only when the query was
    traced, keeping untraced responses byte-identical to schema v1.
    """
    doc = {
        "schema_version": WIRE_SCHEMA_VERSION,
        "ids": [int(obj_id) for obj_id in response.ids],
        "scores": (
            None
            if response.scores is None
            else [float(score) for score in response.scores]
        ),
        "tau_effective": response.tau_effective,
        "num_results": response.num_results,
        "num_candidates": response.num_candidates,
        "num_generated": response.num_generated,
        "engine_time_ms": response.engine_time * 1000.0,
        "cached": response.cached,
        "batch_size": batch_size,
    }
    if response.trace is not None:
        doc["trace"] = response.trace
    return doc
