"""Setup shim so editable installs work in offline environments without wheel."""

from setuptools import find_packages, setup

setup(
    name="repro-pigeonring",
    version="1.0.0",
    description=(
        "Reproduction of 'Pigeonring: A Principle for Faster Thresholded "
        "Similarity Search' (Qin & Xiao, VLDB 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
