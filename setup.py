"""Setup shim so editable installs work in offline environments without wheel.

All project metadata lives in pyproject.toml ([project] and
[tool.setuptools]); this file only gives legacy tooling an entry point.
"""

from setuptools import setup

setup()
